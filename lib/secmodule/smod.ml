module Machine = Smod_kern.Machine
module Proc = Smod_kern.Proc
module Errno = Smod_kern.Errno
module Signal = Smod_kern.Signal
module Sysno = Smod_kern.Sysno
module Sched = Smod_kern.Sched
module Aspace = Smod_vmem.Aspace
module Layout = Smod_vmem.Layout
module Prot = Smod_vmem.Prot
module Clock = Smod_sim.Clock
module Cost = Smod_sim.Cost_model
module Trace = Smod_sim.Trace
module Smof = Smod_modfmt.Smof
module Keystore = Smod_keynote.Keystore
module Fuse = Smod_keynote.Fuse
module Vexec = Smod_keynote.Vexec
module KCompile = Smod_keynote.Compile
module Interp = Smod_svm.Interp
module Ring = Smod_ring.Ring

type toctou_mitigation = No_mitigation | Unmap_during_call | Dequeue_client_threads

(* Per-session dispatch-ring state, bound lazily on the first
   [sys_smod_call_batch] after the client registered a ring (syscall
   321).  The wait queues are the two halves of the spin-then-block
   protocol; [r_handle_engaged] flips once the handle has entered its
   ring-aware serve loop — before that it still blocks in [msgrcv], so
   the kernel's doorbell must fall back to an mtype-3 msgq message. *)
type ring_state = {
  r_ring : Ring.t;
  r_client_wq : Sched.waitq;
  r_handle_wq : Sched.waitq;
  mutable r_handle_engaged : bool;
}

type session = {
  sid : int;
  m_id : int;
  entry : Registry.entry;
  client_pid : int;
  mutable handle_pid : int;
  req_qid : int;
  rep_qid : int;
  credential : Credential.t;
  policy_state : Policy.state;
  module_text_base : int;
  module_data_base : int;
  mutable established : bool;
  mutable detached : bool;
  mutable calls : int;
  mutable denied_calls : int;
  mutable faulted_calls : int;
  mutable handle_exec_us : float;
  mutable client_waiting_handshake : bool;
  pooled : bool;
  mux : bool;
  mutable ring : ring_state option;
  mutable cred_digest : string option;
  mutable compiled_memo : (int * int * Policy.compiled) option;
  mutable fused_memo : (int * int * string * Policy.fused_ctx) option;
      (* (policy_rev, keystore_gen, transport) -> armed batch context.
         Transport is part of the key because [origin_transport] differs
         per admission path and one session can mix paths. *)
}

(* A reusable handle co-process managed by the smodd service layer
   (lib/pool): it outlives any single session, parking between tenants
   instead of dying with its client. *)
type pooled_handle = {
  ph_entry : Registry.entry;
  mutable ph_pid : int;
  ph_req_qid : int;
  ph_rep_qid : int;
  ph_aspace : Aspace.t;
  ph_data_image : bytes;
      (** pristine (linked) module data segment, re-installed between tenants *)
  mutable ph_session : session option;
  mutable ph_dead : bool;
  mutable ph_reserved : bool;
      (** claimed for a specific incoming client; skip the park callback *)
  mutable ph_tenants : int;
  ph_on_park : pooled_handle -> unit;
  ph_on_death : pooled_handle -> unit;
}

type cached_decision = Cache_allow | Cache_deny of string

type policy_cache_hooks = {
  cache_lookup : session -> func_name:string -> cached_decision option;
  cache_store : session -> func_name:string -> cached_decision -> unit;
  compiled_lookup : session -> Policy.compiled option;
  compiled_store : session -> Policy.compiled -> unit;
}

(* SQPOLL-style kernel poller (E22): one kernel daemon sweeps every live
   session's registered ring for Submitted slots, so the steady-state
   data path needs no client trap at all.  The spin/park policy shares
   [spin_budget] with the handle serve loop: after that many consecutive
   empty sweeps the poller sets each ring's need-wakeup flag and blocks
   on [p_wq]; the next submitter sees the flag (a trap-free shared-memory
   read) and rings [sys_smod_poll_doorbell] — the only trap the zero-trap
   path ever pays, and only while the poller naps. *)
type poller = {
  mutable p_run : bool;
  mutable p_pid : int;
  mutable p_parked : bool;
  p_wq : Sched.waitq;
  mutable p_sweeps : int;
  mutable p_empty_sweeps : int;  (* total sweeps that stamped nothing *)
  mutable p_parks : int;
  mutable p_wakes : int;
  mutable p_slots : int;
  mutable p_geometry_rejects : int;
  mutable p_doorbells : int;
  p_session_slots : (int, int) Hashtbl.t;  (* sid -> slots stamped *)
}

(* Effects-based handle multiplexer (E22): one daemon process serves
   thousands of ring-only sessions as fibers.  A fiber drains its
   session's ring and performs [Mux_suspend] when it runs dry; the stamp
   path (batch trap or poller) enqueues the session id and wakes the mux,
   which resumes the continuation under that session's handle context
   (address space, secret stack, role).  This replaces the
   one-blocked-loop-per-session model: suspended sessions cost a table
   entry, not a process. *)
type _ Effect.t += Mux_suspend : unit Effect.t

type mux_fiber =
  | Fiber_fresh
  | Fiber_suspended of (unit, unit) Effect.Deep.continuation
  | Fiber_running
  | Fiber_done

type mux_session = {
  ms_session : session;
  ms_aspace : Aspace.t;  (* the session's handle context: module image,
                            secret segment, force-shared client range *)
  mutable ms_sp : int;
  mutable ms_fp : int;
  mutable ms_fiber : mux_fiber;
  mutable ms_queued : bool;  (* already on [mx_ready] *)
}

type mux = {
  mutable mx_pid : int;
  mx_wq : Sched.waitq;
  mx_ready : int Queue.t;  (* sids with stamped work (or a detach) pending *)
  mx_sessions : (int, mux_session) Hashtbl.t;
  mutable mx_live : int;
  mutable mx_peak : int;
  mutable mx_attached : int;  (* total sessions ever attached *)
}

type t = {
  machine : Machine.t;
  registry : Registry.t;
  keystore : Keystore.t;
  sessions_by_client : (int, session) Hashtbl.t;
  sessions_by_handle : (int, session) Hashtbl.t;
  pooled_handles_by_pid : (int, pooled_handle) Hashtbl.t;
  mutable next_sid : int;
  mutable next_pool_serial : int;
  mutable toctou : toctou_mitigation;
  mutable fast_path : bool;
  mutable broker : (Smod_kern.Proc.t -> Registry.entry -> Credential.t -> int option) option;
  mutable policy_cache : policy_cache_hooks option;
  mutable remove_hooks : (m_id:int -> unit) list;
  mutable compile_policies : bool;
  mutable fuse_policies : bool;
  mutable vectorize_policies : bool;
  mutable vector_width : int;
  mutable dispatch_gate : (unit -> unit) option;
  mutable spin_budget : int;
  mutable poller : poller option;
  mutable mux : mux option;
  mutable mux_enabled : bool;
}

exception Access_denied of string

(* Observability (lib/metrics): the SMOD dispatch path itself — call
   volume, denials, session churn, and the per-call latency distribution
   that Figure 8 summarises as a single mean. *)
let m_scope = Smod_metrics.scope "secmodule"
let m_calls = Smod_metrics.Scope.counter m_scope "calls"
let m_calls_denied = Smod_metrics.Scope.counter m_scope "calls_denied"
let m_sessions_started = Smod_metrics.Scope.counter m_scope "sessions_started"
let m_sessions_detached = Smod_metrics.Scope.counter m_scope "sessions_detached"
let m_handle_scrubs = Smod_metrics.Scope.counter m_scope "handle_scrubs"
let m_scrub_bytes = Smod_metrics.Scope.counter m_scope "scrub_bytes"

(* Per-function dispatch accounting: dynamic counters named
   secmodule.func_calls.<module>.<function> (and .func_denied...) are the
   evidence `smodctl audit` reads to find granted-but-never-dispatched
   functions.  Metrics only — no cost-model charge, so simulated timings
   are byte-for-byte what the baselines measured. *)
let count_func ~denied ~mod_name ~func_name =
  let kind = if denied then "func_denied" else "func_calls" in
  Smod_metrics.Counter.incr
    (Smod_metrics.counter (String.concat "." [ "secmodule"; kind; mod_name; func_name ]))

(* Compiled-policy cache traffic (the caches themselves live on registry
   entries and, when smodd is installed, in the pool's policy cache). *)
let m_compile_hits = Smod_metrics.Scope.counter m_scope "policy_compile_hits"
let m_compile_misses = Smod_metrics.Scope.counter m_scope "policy_compile_misses"

let m_compile_invalidations =
  Smod_metrics.Scope.counter m_scope "policy_compile_invalidations"

let m_call_us =
  Smod_metrics.Scope.histogram m_scope "call_us"
    ~edges:[| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0 |]

(* ring.* scope: the shared-memory fast path (setups/teardowns are
   counted by the kernel in lib/kern/machine.ml). *)
let m_ring_scope = Smod_metrics.scope "ring"
let m_ring_submits = Smod_metrics.Scope.counter m_ring_scope "submits"
let m_ring_batches = Smod_metrics.Scope.counter m_ring_scope "batches"
let m_ring_denied = Smod_metrics.Scope.counter m_ring_scope "denied"
let m_ring_doorbell_wakes = Smod_metrics.Scope.counter m_ring_scope "doorbell_wakes"

let m_ring_doorbell_fallbacks =
  Smod_metrics.Scope.counter m_ring_scope "doorbell_fallbacks"

let m_ring_spin_wakeups = Smod_metrics.Scope.counter m_ring_scope "spin_wakeups"
let m_ring_block_wakeups = Smod_metrics.Scope.counter m_ring_scope "block_wakeups"
let m_ring_stale_drops = Smod_metrics.Scope.counter m_ring_scope "stale_drops"

let m_ring_batch_size =
  Smod_metrics.Scope.histogram m_ring_scope "batch_size"
    ~edges:[| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0 |]

(* poller.* scope: the SQPOLL-style zero-trap path and the effects
   multiplexer that serves it (E22). *)
let m_poll_scope = Smod_metrics.scope "poller"
let m_poll_sweeps = Smod_metrics.Scope.counter m_poll_scope "sweeps"
let m_poll_slots = Smod_metrics.Scope.counter m_poll_scope "slots_stamped"
let m_poll_parks = Smod_metrics.Scope.counter m_poll_scope "parks"
let m_poll_wakes = Smod_metrics.Scope.counter m_poll_scope "wakes"
let m_poll_doorbells = Smod_metrics.Scope.counter m_poll_scope "doorbells"
let m_mux_attached = Smod_metrics.Scope.counter m_poll_scope "mux_sessions_attached"

let machine t = t.machine
let keystore t = t.keystore
let registry t = t.registry
let set_toctou_mitigation t m = t.toctou <- m
let set_call_fast_path t b = t.fast_path <- b
let call_fast_path t = t.fast_path
let set_dispatch_gate t gate = t.dispatch_gate <- gate
let set_policy_compile t b = t.compile_policies <- b
let policy_compile_enabled t = t.compile_policies

let set_policy_fuse t b = t.fuse_policies <- b
let policy_fuse_enabled t = t.fuse_policies
let set_policy_vectorize t b = t.vectorize_policies <- b
let policy_vectorize_enabled t = t.vectorize_policies

let set_vector_width t w =
  if w < 1 then invalid_arg "Smod.set_vector_width: width < 1";
  t.vector_width <- w

let vector_width t = t.vector_width
let toctou_mitigation t = t.toctou

(* Where module images land inside the handle's address space: text below
   the client text limit (never inside the shared range), module-private
   data just above it. *)
let module_text_base_addr = 0x0060_0000
let module_data_base_addr = 0x0300_0000
let secret_stack_top = Layout.secret_base + (Layout.secret_pages * Layout.page_size)

(* The kernel caches the client's pid at the base of the secret segment so
   the converted getpid can answer without a nested trap (§4.3). *)
let client_pid_cache_addr = Layout.secret_base

let session_of_client t ~client_pid = Hashtbl.find_opt t.sessions_by_client client_pid
let session_of_handle t ~handle_pid = Hashtbl.find_opt t.sessions_by_handle handle_pid

let active_sessions t =
  Hashtbl.fold (fun _ s acc -> if s.detached then acc else s :: acc) t.sessions_by_client []

let handle_aspace t session =
  let handle = Machine.proc_exn t.machine session.handle_pid in
  handle.Proc.aspace

(* ------------------------------------------------------------------ *)
(* Registration (trusted tool chain)                                   *)
(* ------------------------------------------------------------------ *)

let register t ~image ?(protection = Registry.Unmap_only) ?(policy = Policy.Session_lifetime)
    ?(admin_principal = "root") ?kernel_key ?kernel_nonce () =
  Registry.add t.registry ~image ~protection ~policy ~admin_principal ?kernel_key
    ?kernel_nonce ()

let bind_native t ~m_id ~name fn =
  match Registry.find_by_id t.registry m_id with
  | None -> raise (Registry.Not_registered (Printf.sprintf "m_id %d" m_id))
  | Some entry -> Registry.bind_native entry ~name fn

(* ------------------------------------------------------------------ *)
(* Session teardown                                                    *)
(* ------------------------------------------------------------------ *)

(* Requests travel as mtype 1; a detach control message for a pooled
   handle as mtype 2.  The handle drains its queue in arrival order, so an
   in-flight request is always served before the detach is honoured.
   mtype 3 is the ring doorbell: a zero-byte kick for a handle still
   blocked in msgrcv when ring work is stamped. *)
let pool_detach_mtype = 2
let ring_doorbell_mtype = 3

let detach_session t session =
  if not session.detached then begin
    session.detached <- true;
    Smod_metrics.Counter.incr m_sessions_detached;
    let clock = Machine.clock t.machine in
    Trace.emitf (Machine.trace t.machine) ~clock ~actor:"kernel" "detach session %d (module %s)"
      session.sid session.entry.Registry.image.Smof.mod_name;
    Hashtbl.remove t.sessions_by_client session.client_pid;
    Hashtbl.remove t.sessions_by_handle session.handle_pid;
    (* Tear the dispatch ring down first: count what a client that died
       mid-batch left behind (Submitted/Claimed slots nobody will ever
       complete), unblock both sides of the spin-then-block protocol, and
       drop the kernel's registration so a recycled handle can never
       claim from it again — the next tenant registers a fresh ring that
       syscall 321 re-arms zeroed. *)
    (match session.ring with
    | Some rs ->
        (try
           let stale = Ring.stale_submitted rs.r_ring in
           if stale > 0 then Smod_metrics.Counter.add m_ring_stale_drops stale
         with Aspace.Segv _ | Aspace.Prot_violation _ -> ());
        session.ring <- None;
        ignore (Machine.wake t.machine rs.r_client_wq);
        ignore (Machine.wake t.machine rs.r_handle_wq)
    | None -> ());
    Machine.ring_teardown t.machine ~pid:session.client_pid;
    if session.mux then begin
      (* Mux sessions are fibers, not processes: never kill the mux proc.
         Break the client half of the pairing, orphan the per-session
         handle context, and kick the mux so the fiber observes
         [detached] and finishes (dropping its continuation). *)
      (match Machine.proc t.machine session.client_pid with
      | Some client ->
          Aspace.set_peer client.Proc.aspace None;
          client.Proc.role <- Proc.Standalone
      | None -> ());
      match t.mux with
      | Some mx -> (
          match Hashtbl.find_opt mx.mx_sessions session.sid with
          | Some ms ->
              Aspace.set_peer ms.ms_aspace None;
              if not ms.ms_queued then begin
                ms.ms_queued <- true;
                Queue.push session.sid mx.mx_ready
              end;
              ignore (Machine.wake t.machine mx.mx_wq)
          | None -> ())
      | None -> ()
    end
    else if session.pooled then begin
      (* Break the client half of the pairing; the handle unshares and
         scrubs itself on the way back to the pool, so its queues and
         process survive for the next tenant. *)
      (match Machine.proc t.machine session.client_pid with
      | Some client ->
          Aspace.set_peer client.Proc.aspace None;
          client.Proc.role <- Proc.Standalone
      | None -> ());
      let handle_live =
        match Machine.proc t.machine session.handle_pid with
        | Some h -> not (Proc.is_zombie h)
        | None -> false
      in
      match Hashtbl.find_opt t.pooled_handles_by_pid session.handle_pid with
      | Some ph when (not ph.ph_dead) && handle_live ->
          (* msgsnd needs a process context; the client may already be a
             zombie (exit-hook detach), in which case the handle itself —
             blocked in msgrcv on this very queue — serves as sender. *)
          let sender =
            match Machine.proc t.machine session.client_pid with
            | Some c when not (Proc.is_zombie c) -> c
            | Some _ | None -> Machine.proc_exn t.machine session.handle_pid
          in
          (try
             Machine.msgsnd t.machine sender ~qid:session.req_qid ~mtype:pool_detach_mtype
               (Bytes.create 0)
           with Errno.Error _ -> ())
      | Some _ | None ->
          (* Handle already dead or dying: its exit hook removes the
             queues and reports the death to smodd. *)
          ()
    end
    else begin
      (* Remove the pair's queues: a client blocked mid-call wakes with
         EIDRM instead of hanging on a dead handle. *)
      (match
         List.find_opt
           (fun pid -> Machine.proc t.machine pid <> None)
           [ session.client_pid; session.handle_pid ]
       with
      | Some pid ->
          let p = Machine.proc_exn t.machine pid in
          (try Machine.msgctl_remove t.machine p ~qid:session.req_qid with Errno.Error _ -> ());
          (try Machine.msgctl_remove t.machine p ~qid:session.rep_qid with Errno.Error _ -> ())
      | None -> ());
      (* Break the VM pairing first so future faults no longer share. *)
      (match Machine.proc t.machine session.client_pid with
      | Some client ->
          Aspace.set_peer client.Proc.aspace None;
          client.Proc.role <- Proc.Standalone
      | None -> ());
      (match Machine.proc t.machine session.handle_pid with
      | Some handle ->
          Aspace.set_peer handle.Proc.aspace None;
          (try Machine.kill t.machine ~pid:session.handle_pid ~signal:Signal.sigkill
           with Errno.Error _ -> ())
      | None -> ())
    end
  end

(* ------------------------------------------------------------------ *)
(* The handle body: smod_std_handle() (§4, step 2)                     *)
(* ------------------------------------------------------------------ *)

let execute_function t session (handle : Proc.t) (req : Wire.request) =
  let clock = Machine.clock t.machine in
  let exec_start = Clock.now_cycles clock in
  let account (reply : Wire.reply) =
    session.handle_exec_us <- session.handle_exec_us +. Clock.elapsed_us clock ~since:exec_start;
    if reply.Wire.status <> 0 then session.faulted_calls <- session.faulted_calls + 1;
    reply
  in
  let entry = session.entry in
  match Registry.symbol_of_func_id entry req.Wire.func_id with
  | None -> account { Wire.status = 2; retval = 0 }
  | Some sym -> account (
      (* smod_stub_receive: running on the secret stack, repoint to the
         shared stack just above arg1 (Figure 3, step 3). *)
      Clock.charge clock Cost.Stub_receive;
      let saved_sp = handle.Proc.sp and saved_fp = handle.Proc.fp in
      handle.Proc.sp <- req.Wire.args_base;
      handle.Proc.fp <- req.Wire.client_fp;
      let finish_frame () =
        (* Step 4: restore the exact frame the client stub built. *)
        Clock.charge clock Cost.Stub_return;
        handle.Proc.sp <- saved_sp;
        handle.Proc.fp <- saved_fp
      in
      let result =
        match sym.Smof.sym_kind with
        | Smof.Bytecode -> (
            let env =
              Interp.make_env ~aspace:handle.Proc.aspace ~clock
                ~syscall:(fun ~nr args -> Machine.syscall t.machine handle nr args)
                ()
            in
            try
              (* The whole module text is addressable so relocated
                 intra-module calls can land on sibling functions. *)
              Ok
                (Interp.run env ~code_base:session.module_text_base
                   ~code_len:(Bytes.length entry.Registry.image.Smof.text)
                   ~entry:sym.Smof.sym_offset ~args_base:req.Wire.args_base ())
            with
            | Interp.Fault _ -> Error 1
            | Aspace.Segv _ | Aspace.Prot_violation _ -> Error 1)
        | Smof.Native native_name -> (
            match Registry.native entry native_name with
            | None -> Error 3
            | Some fn -> (
                (* Integrity: the mapped image bytes must still be the
                   registered native stand-in — a client cannot have
                   substituted other code. *)
                let mapped =
                  Aspace.read_bytes handle.Proc.aspace
                    ~addr:(session.module_text_base + sym.Smof.sym_offset)
                    ~len:sym.Smof.sym_size
                in
                let expected =
                  Smof.native_stub_image ~name:native_name ~size:sym.Smof.sym_size
                in
                if not (Bytes.equal mapped expected) then Error 4
                else begin
                  try Ok (fn t.machine handle ~args_base:req.Wire.args_base) with
                  | Aspace.Segv _ | Aspace.Prot_violation _ -> Error 1
                  | Errno.Error _ -> Error 1
                end))
      in
      finish_frame ();
      match result with
      | Ok retval -> { Wire.status = 0; retval = retval land 0xFFFFFFFF }
      | Error status -> { Wire.status; retval = 0 })

(* How many yield-and-recheck iterations the serve loop burns before
   giving up the CPU for real (the adaptive spin-then-block).  The same
   budget paces the kernel poller's spin/park policy: after this many
   consecutive empty sweeps it sets the rings' need-wakeup flags and
   parks.  Configurable via {!set_spin_budget}; 4 is the historical
   constant every baseline was measured with. *)
let default_spin_budget = 4

let set_spin_budget t n =
  if n < 1 then invalid_arg "Smod.set_spin_budget: budget must be >= 1";
  t.spin_budget <- n

let spin_budget t = t.spin_budget

(* Drain every claimable slot: pull the next admission record from the
   kernel-private shadow (identity + verdict as stamped — whatever the
   client has since scribbled on the ring words), execute, complete in
   place.  One wake of the client's wait queue per drain, however many
   slots it covered — that is the amortization. *)
let drain_ring t session (handle : Proc.t) rs =
  let drained = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match Machine.ring_claim_next t.machine ~pid:session.client_pid with
    | Some (seq, m_id, func_id) ->
        let slot = Ring.claim_stamped rs.r_ring ~seq ~m_id ~func_id in
        let req =
          {
            Wire.func_id = slot.Ring.func_id;
            args_base = slot.Ring.args_base;
            client_sp = slot.Ring.client_sp;
            client_fp = slot.Ring.client_fp;
          }
        in
        let reply = execute_function t session handle req in
        Ring.complete rs.r_ring ~seq:slot.Ring.seq ~status:reply.Wire.status
          ~retval:reply.Wire.retval;
        incr drained
    | None -> continue_ := false
  done;
  if !drained > 0 then ignore (Machine.wake t.machine rs.r_client_wq);
  !drained

let ring_work_available t session _rs =
  Machine.ring_claimable t.machine ~pid:session.client_pid

(* The handle's serve loop, shared by cold-fork and pooled handles.
   Starts in plain msgq mode; once the session has a bound ring it
   becomes ring-first: drain, then poll the queue (never blocking in
   msgrcv again — control messages are found via depth), then
   spin-then-block on the handle wait queue.  Returns when a pooled
   detach control message (mtype 2) arrives; cold-fork handles are
   simply killed at detach. *)
let serve_session t session (handle : Proc.t) ~req_qid ~rep_qid =
  let clock = Machine.clock t.machine in
  let serve_msgq_request payload =
    let reply =
      match Wire.request_of_bytes_res payload with
      | Ok req -> execute_function t session handle req
      | Error _ -> { Wire.status = 5; retval = 0 }
    in
    Machine.msgsnd t.machine handle ~qid:rep_qid ~mtype:1 (Wire.reply_to_bytes reply)
  in
  let rec serve () =
    match session.ring with
    | None ->
        let mtype, payload = Machine.msgrcv t.machine handle ~qid:req_qid ~mtype:0 in
        if mtype = pool_detach_mtype then ()
        else begin
          if mtype <> ring_doorbell_mtype then serve_msgq_request payload;
          serve ()
        end
    | Some rs ->
        rs.r_handle_engaged <- true;
        ring_serve rs
  and ring_serve rs =
    (* Detach first: once the tenant is gone its address space — and the
       ring that lives in it — may already be torn down, so the handle
       must never touch the ring again. *)
    if session.detached then ()
    else begin
      let drained = drain_ring t session handle rs in
      if Machine.msgq_depth t.machine ~qid:req_qid > 0 then begin
        let mtype, payload = Machine.msgrcv t.machine handle ~qid:req_qid ~mtype:0 in
        if mtype = pool_detach_mtype then ()
        else begin
          if mtype <> ring_doorbell_mtype then serve_msgq_request payload;
          ring_serve rs
        end
      end
      else if drained > 0 then ring_serve rs
      else spin rs t.spin_budget
    end
  and spin rs budget =
    if budget = 0 then begin
      Sched.wait_on rs.r_handle_wq handle.Proc.pid;
      Smod_metrics.Counter.incr m_ring_block_wakeups;
      ring_serve rs
    end
    else begin
      Clock.charge clock Cost.Ring_spin;
      Sched.yield ();
      if
        session.detached
        || ring_work_available t session rs
        || Machine.msgq_depth t.machine ~qid:req_qid > 0
      then begin
        Smod_metrics.Counter.incr m_ring_spin_wakeups;
        ring_serve rs
      end
      else spin rs (budget - 1)
    end
  in
  serve ()

let handle_main t session (handle : Proc.t) =
  (* First: move onto the secret stack (Figure 2) — the standard stack
     location is about to be replaced by the client's pages. *)
  handle.Proc.sp <- secret_stack_top - 16;
  handle.Proc.fp <- handle.Proc.sp;
  (* Announce readiness; the kernel force-shares the address spaces. *)
  ignore (Machine.syscall t.machine handle Sysno.smod_session_info [| 0 |]);
  (* Serve until killed. *)
  serve_session t session handle ~req_qid:session.req_qid ~rep_qid:session.rep_qid

(* ------------------------------------------------------------------ *)
(* Pooled handles (the smodd service layer, lib/pool)                  *)
(* ------------------------------------------------------------------ *)

let scrub_pooled_handle t ph =
  let clock = Machine.clock t.machine in
  (* Drop every mapping the departed tenant's force-share left in the
     handle (releasing the client's frames) and break the pairing. *)
  Aspace.remove_range ph.ph_aspace ~start_addr:Layout.share_lo
    ~size:(Layout.share_hi - Layout.share_lo);
  Aspace.set_peer ph.ph_aspace None;
  (* Zero the secret segment so the next tenant cannot observe the
     previous tenant's secret stack or pid cache. *)
  let zeroed =
    Aspace.zero_materialized ph.ph_aspace ~start_addr:Layout.secret_base
      ~size:(Layout.secret_pages * Layout.page_size)
  in
  (* Reset the module's rw data segment to its freshly-installed image:
     under the paper's cold-fork model every session starts with pristine
     module globals, so a pooled handle must not let one tenant's writes
     (state or data) survive into the next session.  Zero first so the
     page-aligned slack beyond the image is covered too. *)
  let data_len = Bytes.length ph.ph_data_image in
  let data_cleared =
    if data_len = 0 then 0
    else begin
      let cleared =
        Aspace.zero_materialized ph.ph_aspace ~start_addr:module_data_base_addr
          ~size:(Layout.page_align_up data_len)
      in
      Aspace.write_bytes ph.ph_aspace ~addr:module_data_base_addr ph.ph_data_image;
      cleared + data_len
    end
  in
  Clock.charge clock (Cost.Copy_bytes (zeroed + data_cleared));
  Smod_metrics.Counter.incr m_handle_scrubs;
  Smod_metrics.Counter.add m_scrub_bytes (zeroed + data_cleared)

(* The body of a pooled handle: park → recycle for the assigned tenant →
   handshake → serve until the detach control message → scrub → park. *)
let pooled_handle_main t ph (handle : Proc.t) =
  let clock = Machine.clock t.machine in
  let rec loop () =
    (match ph.ph_session with
    | None when not ph.ph_dead ->
        if not ph.ph_reserved then ph.ph_on_park ph;
        while ph.ph_session = None && not ph.ph_dead do
          Effect.perform (Sched.Block (Sched.Pool_park ph.ph_entry.Registry.m_id))
        done
    | Some _ | None -> ());
    if ph.ph_dead then raise (Sched.Proc_exit 0);
    match ph.ph_session with
    | None -> loop ()
    | Some session ->
        (* Recycle for the new tenant: drop any stale messages, return to
           the secret stack, refresh the cached client pid (§4.3). *)
        ignore (Machine.msgq_flush t.machine ~qid:ph.ph_req_qid);
        ignore (Machine.msgq_flush t.machine ~qid:ph.ph_rep_qid);
        handle.Proc.sp <- secret_stack_top - 16;
        handle.Proc.fp <- handle.Proc.sp;
        Aspace.write_word ph.ph_aspace ~addr:client_pid_cache_addr session.client_pid;
        Clock.charge clock Cost.Handle_recycle;
        ignore (Machine.syscall t.machine handle Sysno.smod_session_info [| 0 |]);
        serve_session t session handle ~req_qid:ph.ph_req_qid ~rep_qid:ph.ph_rep_qid;
        scrub_pooled_handle t ph;
        ph.ph_session <- None;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* sys_smod_start_session (320)                                        *)
(* ------------------------------------------------------------------ *)

let read_descriptor clock (p : Proc.t) desc_addr =
  let word addr = Aspace.read_word p.Proc.aspace ~addr in
  let name_len = word desc_addr in
  if name_len < 0 || name_len > 256 then Errno.raise_errno Errno.EINVAL "descriptor name";
  let after_name = desc_addr + 4 + name_len in
  let cred_len = word (after_name + 4) in
  if cred_len < 0 || cred_len > 65536 then Errno.raise_errno Errno.EINVAL "descriptor cred";
  let total = 4 + name_len + 8 + cred_len in
  Clock.charge clock (Cost.Copy_bytes total);
  match Wire.descriptor_of_bytes_res (Aspace.read_bytes p.Proc.aspace ~addr:desc_addr ~len:total) with
  | Ok d -> d
  | Error m -> Errno.raise_errno Errno.EINVAL ("smod_start_session: " ^ m)

let check_policy_or_deny t ~policy ~state ~credential ~attrs =
  let clock = Machine.clock t.machine in
  match
    Policy.check ~clock ~now_us:(Clock.now_us clock) ~credential ~attrs policy state
  with
  | Ok () -> ()
  | Error denial ->
      Errno.raise_errno Errno.EACCES
        (Printf.sprintf "policy %s: %s" (Policy.describe denial.Policy.policy)
           denial.Policy.reason)

let check_compiled_or_deny t ~compiled ~state ~credential ~attrs =
  let clock = Machine.clock t.machine in
  match
    Policy.check_compiled ~clock ~now_us:(Clock.now_us clock) ~credential ~attrs compiled
      state
  with
  | Ok () -> ()
  | Error denial ->
      Errno.raise_errno Errno.EACCES
        (Printf.sprintf "policy %s: %s" (Policy.describe denial.Policy.policy)
           denial.Policy.reason)

let session_cred_digest session =
  match session.cred_digest with
  | Some d -> d
  | None ->
      let d =
        Bytes.to_string (Smod_crypto.Sha256.digest (Credential.to_bytes session.credential))
      in
      session.cred_digest <- Some d;
      d

(* The compiled program for this session's (credential, policy revision,
   keystore generation), or [None] when compilation is off.  Steady state
   is the per-session memo (two integer compares); a memo miss probes the
   pool's compiled-handle table (when smodd is installed), then the
   registry entry's cache, and only compiles — charging the one-time
   flattening and hoisted signature checks — when both miss. *)
let policy_of t session =
  if not t.compile_policies then None
  else begin
    let entry = session.entry in
    let rev = entry.Registry.policy_rev in
    let gen = Keystore.generation t.keystore in
    match session.compiled_memo with
    | Some (r, g, c) when r = rev && g = gen -> Some c
    | _ ->
        let clock = Machine.clock t.machine in
        Clock.charge clock Cost.Policy_cache_probe;
        let compiled =
          let pool_cached =
            match t.policy_cache with
            | Some hooks -> hooks.compiled_lookup session
            | None -> None
          in
          match pool_cached with
          | Some c ->
              Smod_metrics.Counter.incr m_compile_hits;
              c
          | None -> (
              let key =
                Registry.compiled_key ~cred_digest:(session_cred_digest session)
                  ~policy_rev:rev ~keystore_gen:gen
              in
              match Registry.find_compiled entry key with
              | Some c ->
                  Smod_metrics.Counter.incr m_compile_hits;
                  c
              | None ->
                  let origin_env =
                    {
                      KCompile.known_modules =
                        List.map
                          (fun e -> e.Registry.image.Smof.mod_name)
                          (Registry.entries t.registry);
                    }
                  in
                  let c =
                    Policy.compile ~fuse:t.fuse_policies ~origin_env ~clock
                      ~keystore:t.keystore ~credential:session.credential
                      entry.Registry.policy
                  in
                  Smod_metrics.Counter.incr m_compile_misses;
                  Registry.store_compiled entry key c;
                  (match t.policy_cache with
                  | Some hooks -> hooks.compiled_store session c
                  | None -> ());
                  c)
        in
        session.compiled_memo <- Some (rev, gen, compiled);
        Some compiled
  end

(* ------------------------------------------------------------------ *)
(* Caller provenance                                                   *)
(* ------------------------------------------------------------------ *)

(* Resolved from kernel-held state only: the session table says whether
   the calling process is itself some module's handle (a nested module
   call) and the proc table says which protection ring it runs in.  A
   client cannot influence any of it from user space, which is what makes
   origin predicates trustworthy post-compromise. *)
let origin_of_client t ~client_pid ~transport =
  let o_module =
    match session_of_handle t ~handle_pid:client_pid with
    | Some inner -> inner.entry.Registry.image.Smof.mod_name
    | None -> "user"
  in
  let o_ring =
    match Machine.proc t.machine client_pid with
    | Some p -> p.Proc.ring
    | None -> 3
  in
  { Fuse.o_module; o_ring; o_transport = transport }

let origin_of t session ~transport =
  origin_of_client t ~client_pid:session.client_pid ~transport

(* The same provenance as attribute pairs, appended to every admission
   query so origin predicates resolve identically under the interpreted,
   compiled, and fused engines.  Appending is free (no cost-model charge)
   and invisible to policies that never name an origin attribute. *)
let origin_attr_pairs (origin : Fuse.origin) =
  [
    ("origin_module", origin.Fuse.o_module);
    ("origin_ring", string_of_int origin.Fuse.o_ring);
    ("origin_transport", origin.Fuse.o_transport);
  ]

let check_fused_or_deny t ~ctx ~origin ~state ~credential ~attrs =
  let clock = Machine.clock t.machine in
  match
    Policy.check_fused ~clock ~now_us:(Clock.now_us clock) ~credential ~origin ~attrs ctx
      state
  with
  | Ok () -> ()
  | Error denial ->
      Errno.raise_errno Errno.EACCES
        (Printf.sprintf "policy %s: %s" (Policy.describe denial.Policy.policy)
           denial.Policy.reason)

(* The session's armed fused context for one transport, or [None] when
   fusion is off or nothing in the compiled tree carries a plan.  The
   snapshot survives across batches and scalar calls under the same
   (policy revision, keystore generation, transport) — eager invalidation
   clears it exactly where [compiled_memo] is cleared. *)
let fused_of t session ~transport =
  if not (t.compile_policies && t.fuse_policies) then None
  else
    match policy_of t session with
    | None -> None
    | Some compiled when not (Policy.fusible compiled) -> None
    | Some compiled -> (
        let rev = session.entry.Registry.policy_rev in
        let gen = Keystore.generation t.keystore in
        match session.fused_memo with
        | Some (r, g, tr, ctx) when r = rev && g = gen && tr = transport -> Some ctx
        | _ ->
            let origin = origin_of t session ~transport in
            let attrs =
              [
                ("phase", "call");
                ("module", session.entry.Registry.image.Smof.mod_name);
              ]
              @ origin_attr_pairs origin
            in
            let ctx =
              Policy.begin_fused ~clock:(Machine.clock t.machine) ~origin ~attrs compiled
            in
            session.fused_memo <- Some (rev, gen, transport, ctx);
            Some ctx)

let install_module_image t session_text_base session_data_base handle_aspace entry =
  let clock = Machine.clock t.machine in
  let image = entry.Registry.image in
  (* Decrypt with the kernel-held key when necessary; charge the AES work. *)
  let plaintext =
    if image.Smof.encrypted then begin
      Clock.charge clock Cost.Aes_key_schedule;
      Clock.charge_n clock Cost.Aes_block ((Bytes.length image.Smof.text + 15) / 16);
      Registry.plaintext_image entry
    end
    else image
  in
  (* Link: resolve every symbol to its final address in the handle. *)
  let resolve name =
    match Smof.find_symbol plaintext name with
    | Some sym -> session_text_base + sym.Smof.sym_offset
    | None -> 0
  in
  let linked = Smof.apply_relocations plaintext ~resolve in
  let text_size = Layout.page_align_up (max 1 (Bytes.length linked.Smof.text)) in
  Aspace.add_entry handle_aspace ~start_addr:session_text_base ~size:text_size ~prot:Prot.rw
    ~kind:Aspace.Text ~name:("module:" ^ image.Smof.mod_name);
  Aspace.write_bytes handle_aspace ~addr:session_text_base linked.Smof.text;
  Clock.charge clock (Cost.Copy_bytes (Bytes.length linked.Smof.text));
  Aspace.protect_range handle_aspace ~start_addr:session_text_base ~size:text_size
    ~prot:Prot.rx;
  if Bytes.length linked.Smof.data > 0 then begin
    let data_size = Layout.page_align_up (Bytes.length linked.Smof.data) in
    Aspace.add_entry handle_aspace ~start_addr:session_data_base ~size:data_size ~prot:Prot.rw
      ~kind:Aspace.Data ~name:("module-data:" ^ image.Smof.mod_name);
    Aspace.write_bytes handle_aspace ~addr:session_data_base linked.Smof.data;
    Clock.charge clock (Cost.Copy_bytes (Bytes.length linked.Smof.data))
  end;
  linked

(* Spawn a reusable handle for [entry], owned by the smodd service layer.
   Everything a cold fork would build per session — address space, module
   image (decrypted once), secret segment, queue pair, the fork itself —
   is paid here, off the client's start_session path. *)
let spawn_pooled_handle t ~entry ~on_park ~on_death =
  let clock = Machine.clock t.machine in
  let serial = t.next_pool_serial in
  t.next_pool_serial <- t.next_pool_serial + 1;
  let mod_name = entry.Registry.image.Smof.mod_name in
  let handle_aspace =
    Aspace.create ~phys:(Machine.phys t.machine) ~clock
      ~name:(Printf.sprintf "pool-handle-%s-%d" mod_name serial)
  in
  let linked =
    install_module_image t module_text_base_addr module_data_base_addr handle_aspace entry
  in
  Aspace.add_entry handle_aspace ~start_addr:Layout.secret_base
    ~size:(Layout.secret_pages * Layout.page_size)
    ~prot:Prot.rw ~kind:Aspace.Secret ~name:"secret";
  Clock.charge clock Cost.Fork_base;
  (* The body needs the pooled_handle record, which needs the pid: tie the
     knot through a ref — the body cannot run before spawn returns. *)
  let ph_ref = ref None in
  let handle =
    Machine.spawn t.machine ~daemon:true ~aspace:handle_aspace
      ~name:(Printf.sprintf "smod-pool-%s-%d" mod_name serial)
      (fun h -> pooled_handle_main t (Option.get !ph_ref) h)
  in
  handle.Proc.role <- Proc.Smod_handle { client_pid = 0 };
  handle.Proc.no_core_dump <- true;
  handle.Proc.no_ptrace <- true;
  handle.Proc.ring <- 1;
  let req_qid = Machine.msgget t.machine handle ~key:(0x5D0D0000 lor (serial * 2)) in
  let rep_qid = Machine.msgget t.machine handle ~key:(0x5D0D0000 lor ((serial * 2) + 1)) in
  let ph =
    {
      ph_entry = entry;
      ph_pid = handle.Proc.pid;
      ph_req_qid = req_qid;
      ph_rep_qid = rep_qid;
      ph_aspace = handle_aspace;
      ph_data_image = linked.Smof.data;
      ph_session = None;
      ph_dead = false;
      ph_reserved = false;
      ph_tenants = 0;
      ph_on_park = on_park;
      ph_on_death = on_death;
    }
  in
  ph_ref := Some ph;
  Hashtbl.replace t.pooled_handles_by_pid handle.Proc.pid ph;
  handle.Proc.exit_hooks <-
    (fun h ->
      ph.ph_dead <- true;
      (* Died mid-session (killed, faulted): tear the session down fully
         so the client is not left talking to a corpse. *)
      (match ph.ph_session with
      | Some s -> detach_session t s
      | None -> ());
      ph.ph_session <- None;
      Hashtbl.remove t.pooled_handles_by_pid ph.ph_pid;
      (try Machine.msgctl_remove t.machine h ~qid:ph.ph_req_qid with Errno.Error _ -> ());
      (try Machine.msgctl_remove t.machine h ~qid:ph.ph_rep_qid with Errno.Error _ -> ());
      ph.ph_on_death ph)
    :: handle.Proc.exit_hooks;
  Trace.emitf (Machine.trace t.machine) ~clock ~actor:"smodd"
    "spawned pooled handle pid=%d for module %s" handle.Proc.pid mod_name;
  ph

let pooled_handle_pid ph = ph.ph_pid
let pooled_handle_entry ph = ph.ph_entry
let pooled_handle_busy ph = ph.ph_session <> None
let pooled_handle_dead ph = ph.ph_dead
let pooled_handle_tenants ph = ph.ph_tenants
let pooled_handle_aspace ph = ph.ph_aspace
let reserve_pooled_handle ph = ph.ph_reserved <- true
let unreserve_pooled_handle ph = ph.ph_reserved <- false

let retire_pooled_handle t ph =
  if not ph.ph_dead then begin
    ph.ph_dead <- true;
    Trace.emitf (Machine.trace t.machine) ~clock:(Machine.clock t.machine) ~actor:"smodd"
      "retire pooled handle pid=%d (module %s)" ph.ph_pid
      ph.ph_entry.Registry.image.Smof.mod_name;
    match Machine.proc t.machine ph.ph_pid with
    | Some h when not (Proc.is_zombie h) -> (
        try Machine.kill t.machine ~pid:ph.ph_pid ~signal:Signal.sigkill
        with Errno.Error _ -> ())
    | Some _ | None -> ()
  end

(* Attach a new client session to a parked (or freshly spawned) pooled
   handle: the cheap path that replaces the cold fork. *)
let attach_pooled t (p : Proc.t) ph ~credential =
  if ph.ph_dead then invalid_arg "attach_pooled: handle is dead";
  if ph.ph_session <> None then invalid_arg "attach_pooled: handle is busy";
  if Hashtbl.mem t.sessions_by_client p.Proc.pid then
    Errno.raise_errno Errno.EEXIST "smod_start_session: client already has a session";
  let clock = Machine.clock t.machine in
  let entry = ph.ph_entry in
  let sid = t.next_sid in
  t.next_sid <- t.next_sid + 1;
  let session =
    {
      sid;
      m_id = entry.Registry.m_id;
      entry;
      client_pid = p.Proc.pid;
      handle_pid = ph.ph_pid;
      req_qid = ph.ph_req_qid;
      rep_qid = ph.ph_rep_qid;
      credential;
      policy_state = Policy.initial_state entry.Registry.policy;
      module_text_base = module_text_base_addr;
      module_data_base = module_data_base_addr;
      established = false;
      detached = false;
      calls = 0;
      denied_calls = 0;
      faulted_calls = 0;
      handle_exec_us = 0.0;
      client_waiting_handshake = false;
      pooled = true;
      mux = false;
      ring = None;
      cred_digest = None;
      compiled_memo = None;
      fused_memo = None;
    }
  in
  ph.ph_session <- Some session;
  ph.ph_reserved <- false;
  ph.ph_tenants <- ph.ph_tenants + 1;
  let handle = Machine.proc_exn t.machine ph.ph_pid in
  handle.Proc.role <- Proc.Smod_handle { client_pid = p.Proc.pid };
  p.Proc.role <- Proc.Smod_client { handle_pid = ph.ph_pid };
  Hashtbl.replace t.sessions_by_client p.Proc.pid session;
  Hashtbl.replace t.sessions_by_handle ph.ph_pid session;
  p.Proc.exit_hooks <- (fun _ -> detach_session t session) :: p.Proc.exit_hooks;
  Clock.charge clock Cost.Pool_admission;
  (* A parked handle is blocked on Pool_park; a fresh spawn is already
     ready and this is a no-op. *)
  Machine.wakeup t.machine ph.ph_pid;
  Trace.emitf (Machine.trace t.machine) ~clock ~actor:"kernel"
    "attach sid=%d module=%s client=%d pooled-handle=%d (tenant %d)" sid
    entry.Registry.image.Smof.mod_name p.Proc.pid ph.ph_pid ph.ph_tenants;
  Smod_metrics.Counter.incr m_sessions_started;
  sid

let set_session_broker t broker = t.broker <- broker
let set_policy_cache t hooks = t.policy_cache <- hooks
let add_module_remove_hook t hook = t.remove_hooks <- hook :: t.remove_hooks

let remove_module_remove_hook t hook =
  t.remove_hooks <- List.filter (fun h -> h != hook) t.remove_hooks

let cold_start_session t (p : Proc.t) entry credential =
  let clock = Machine.clock t.machine in
  (* Build the handle's private address space. *)
  let handle_aspace =
    Aspace.create ~phys:(Machine.phys t.machine) ~clock
      ~name:(Printf.sprintf "handle-of-%d" p.Proc.pid)
  in
  ignore (install_module_image t module_text_base_addr module_data_base_addr handle_aspace entry);
  (* Secret stack/heap segment, never shared, never client-visible. *)
  Aspace.add_entry handle_aspace ~start_addr:Layout.secret_base
    ~size:(Layout.secret_pages * Layout.page_size)
    ~prot:Prot.rw ~kind:Aspace.Secret ~name:"secret";
  Aspace.write_word handle_aspace ~addr:client_pid_cache_addr p.Proc.pid;
  (* Message queues for the pair. *)
  let sid = t.next_sid in
  t.next_sid <- t.next_sid + 1;
  let req_qid = Machine.msgget t.machine p ~key:(0x5E550000 lor (sid * 2)) in
  let rep_qid = Machine.msgget t.machine p ~key:(0x5E550000 lor ((sid * 2) + 1)) in
  (* Forcibly fork the handle. *)
  let session =
    {
      sid;
      m_id = entry.Registry.m_id;
      entry;
      client_pid = p.Proc.pid;
      handle_pid = 0;
      req_qid;
      rep_qid;
      credential;
      policy_state = Policy.initial_state entry.Registry.policy;
      module_text_base = module_text_base_addr;
      module_data_base = module_data_base_addr;
      established = false;
      detached = false;
      calls = 0;
      denied_calls = 0;
      faulted_calls = 0;
      handle_exec_us = 0.0;
      client_waiting_handshake = false;
      pooled = false;
      mux = false;
      ring = None;
      cred_digest = None;
      compiled_memo = None;
      fused_memo = None;
    }
  in
  let handle =
    Machine.forced_fork t.machine p
      ~name:(Printf.sprintf "smod-handle-%d" sid)
      ~daemon:true
      ~role:(Proc.Smod_handle { client_pid = p.Proc.pid })
      ~aspace:handle_aspace
      ~body:(fun handle -> handle_main t session handle)
  in
  (* §3.1: handle processes never dump core and can never be traced. *)
  handle.Proc.no_core_dump <- true;
  handle.Proc.no_ptrace <- true;
  (* Handles are "periphery code" in the 80386 ring model the paper opens
     with (§2): more privileged than any user process. *)
  handle.Proc.ring <- 1;
  session.handle_pid <- handle.Proc.pid;
  p.Proc.role <- Proc.Smod_client { handle_pid = handle.Proc.pid };
  Hashtbl.replace t.sessions_by_client p.Proc.pid session;
  Hashtbl.replace t.sessions_by_handle handle.Proc.pid session;
  (* The simplest policy allows access for the lifetime of p: tear the
     session down when the client goes away — and equally if the handle
     dies, so no client is left waiting on a dead enforcement point. *)
  p.Proc.exit_hooks <- (fun _ -> detach_session t session) :: p.Proc.exit_hooks;
  handle.Proc.exit_hooks <- (fun _ -> detach_session t session) :: handle.Proc.exit_hooks;
  Trace.emitf (Machine.trace t.machine) ~clock ~actor:"kernel"
    "start_session sid=%d module=%s client=%d handle=%d" sid
    entry.Registry.image.Smof.mod_name p.Proc.pid handle.Proc.pid;
  Smod_metrics.Counter.incr m_sessions_started;
  sid

(* ------------------------------------------------------------------ *)
(* Effects-based handle multiplexer (E22)                              *)
(* ------------------------------------------------------------------ *)

(* Hand a session's freshly stamped work (or its detach) to the mux:
   enqueue the sid once and wake the mux proc.  The wake is a no-op when
   the mux is already running — it drains the ready queue before
   blocking again. *)
let mux_notify t session =
  match t.mux with
  | Some mx -> (
      match Hashtbl.find_opt mx.mx_sessions session.sid with
      | Some ms ->
          if not ms.ms_queued then begin
            ms.ms_queued <- true;
            Queue.push session.sid mx.mx_ready
          end;
          ignore (Machine.wake t.machine mx.mx_wq)
      | None -> ())
  | None -> ()

let mux_finish_fiber t mx ms =
  match ms.ms_fiber with
  | Fiber_done -> ()
  | Fiber_fresh | Fiber_running | Fiber_suspended _ ->
      ms.ms_fiber <- Fiber_done;
      Hashtbl.remove mx.mx_sessions ms.ms_session.sid;
      mx.mx_live <- mx.mx_live - 1;
      Aspace.destroy ms.ms_aspace;
      Trace.emitf (Machine.trace t.machine) ~clock:(Machine.clock t.machine) ~actor:"smod-mux"
        "fiber done sid=%d (%d live)" ms.ms_session.sid mx.mx_live

(* One session's serve loop as a fiber: drain the ring, suspend when it
   runs dry, finish when the session detaches.  Mirrors the ring half of
   [serve_session] minus the msgq legs — mux sessions are ring-only. *)
let mux_fiber_body t (mp : Proc.t) ms =
  let session = ms.ms_session in
  let rec serve () =
    if session.detached then ()
    else
      match session.ring with
      | None ->
          (* No ring bound yet (client still setting up): sleep until the
             stamp path notifies us. *)
          Effect.perform Mux_suspend;
          serve ()
      | Some rs ->
          rs.r_handle_engaged <- true;
          let drained =
            try drain_ring t session mp rs
            with Aspace.Segv _ | Aspace.Prot_violation _ -> 0
          in
          if drained = 0 then Effect.perform Mux_suspend;
          serve ()
  in
  serve ()

(* Run [resume] under the session's handle context: install its address
   space, secret stack and role on the mux proc, run until the fiber
   suspends or finishes, then put the mux baseline back.  A fiber that
   blocks in the scheduler mid-call (an unhandled [Sched.Block]) suspends
   the whole mux proc with the session context installed — exactly what a
   dedicated handle process would do. *)
let mux_run_fiber (mp : Proc.t) ms resume =
  let saved_aspace = mp.Proc.aspace
  and saved_sp = mp.Proc.sp
  and saved_fp = mp.Proc.fp
  and saved_role = mp.Proc.role in
  mp.Proc.aspace <- ms.ms_aspace;
  mp.Proc.sp <- ms.ms_sp;
  mp.Proc.fp <- ms.ms_fp;
  mp.Proc.role <- Proc.Smod_handle { client_pid = ms.ms_session.client_pid };
  resume ();
  ms.ms_sp <- mp.Proc.sp;
  ms.ms_fp <- mp.Proc.fp;
  mp.Proc.aspace <- saved_aspace;
  mp.Proc.sp <- saved_sp;
  mp.Proc.fp <- saved_fp;
  mp.Proc.role <- saved_role

let mux_start_fiber t mx (mp : Proc.t) ms =
  mux_run_fiber mp ms (fun () ->
      Effect.Deep.match_with
        (fun () -> mux_fiber_body t mp ms)
        ()
        {
          Effect.Deep.retc = (fun () -> mux_finish_fiber t mx ms);
          exnc =
            (fun e ->
              mux_finish_fiber t mx ms;
              raise e);
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Mux_suspend ->
                  Some
                    (fun (k : (a, _) Effect.Deep.continuation) ->
                      ms.ms_fiber <- Fiber_suspended k)
              | _ -> None);
        })

let mux_main t mx (mp : Proc.t) =
  let rec loop () =
    while not (Queue.is_empty mx.mx_ready) do
      let sid = Queue.pop mx.mx_ready in
      match Hashtbl.find_opt mx.mx_sessions sid with
      | None -> ()
      | Some ms -> (
          ms.ms_queued <- false;
          match ms.ms_fiber with
          | Fiber_fresh ->
              ms.ms_fiber <- Fiber_running;
              mux_start_fiber t mx mp ms
          | Fiber_suspended k ->
              ms.ms_fiber <- Fiber_running;
              mux_run_fiber mp ms (fun () -> Effect.Deep.continue k ())
          | Fiber_running | Fiber_done -> ())
    done;
    Sched.wait_on mx.mx_wq mp.Proc.pid;
    loop ()
  in
  loop ()

let set_session_mux t enable =
  if enable then begin
    (match t.mux with
    | Some _ -> ()
    | None ->
        let mx =
          {
            mx_pid = 0;
            mx_wq = Sched.waitq "smod-mux";
            mx_ready = Queue.create ();
            mx_sessions = Hashtbl.create 64;
            mx_live = 0;
            mx_peak = 0;
            mx_attached = 0;
          }
        in
        t.mux <- Some mx;
        let mp = Machine.spawn t.machine ~daemon:true ~name:"smod-mux" (fun mp -> mux_main t mx mp) in
        mp.Proc.no_core_dump <- true;
        mp.Proc.no_ptrace <- true;
        mp.Proc.ring <- 1;
        mx.mx_pid <- mp.Proc.pid);
    t.mux_enabled <- true
  end
  else t.mux_enabled <- false

let session_mux_enabled t = t.mux_enabled && t.mux <> None

(* Attach a client as a mux fiber: per-session handle context (module
   image, secret segment, pid cache) but no process, no queue pair, no
   handshake trap — the kernel force-shares at attach time and the
   session is established immediately.  Ring-only by construction. *)
let mux_attach t (p : Proc.t) entry credential =
  let mx =
    match t.mux with
    | Some mx when t.mux_enabled -> mx
    | Some _ | None -> invalid_arg "Smod.mux_attach: multiplexer not enabled"
  in
  if Hashtbl.mem t.sessions_by_client p.Proc.pid then
    Errno.raise_errno Errno.EEXIST "smod_start_session: client already has a session";
  let clock = Machine.clock t.machine in
  let sid = t.next_sid in
  t.next_sid <- t.next_sid + 1;
  let ms_aspace =
    Aspace.create ~phys:(Machine.phys t.machine) ~clock
      ~name:(Printf.sprintf "mux-handle-%d" sid)
  in
  ignore (install_module_image t module_text_base_addr module_data_base_addr ms_aspace entry);
  Aspace.add_entry ms_aspace ~start_addr:Layout.secret_base
    ~size:(Layout.secret_pages * Layout.page_size)
    ~prot:Prot.rw ~kind:Aspace.Secret ~name:"secret";
  Aspace.write_word ms_aspace ~addr:client_pid_cache_addr p.Proc.pid;
  let session =
    {
      sid;
      m_id = entry.Registry.m_id;
      entry;
      client_pid = p.Proc.pid;
      handle_pid = mx.mx_pid;
      (* Ring-only: no queue pair exists, so a scalar smod_call (which
         needs one) is refused in sys_call rather than left to hang. *)
      req_qid = 0;
      rep_qid = 0;
      credential;
      policy_state = Policy.initial_state entry.Registry.policy;
      module_text_base = module_text_base_addr;
      module_data_base = module_data_base_addr;
      established = false;
      detached = false;
      calls = 0;
      denied_calls = 0;
      faulted_calls = 0;
      handle_exec_us = 0.0;
      client_waiting_handshake = false;
      pooled = false;
      mux = true;
      ring = None;
      cred_digest = None;
      compiled_memo = None;
      fused_memo = None;
    }
  in
  (* The handshake happens inline: there is one mux proc for all fibers,
     so the per-session force-share cannot wait for a handle-side
     session_info trap. *)
  Aspace.force_share ~client:p.Proc.aspace ~handle:ms_aspace ~lo:Layout.share_lo
    ~hi:Layout.share_hi;
  session.established <- true;
  p.Proc.role <- Proc.Smod_client { handle_pid = mx.mx_pid };
  (* Only the client index: thousands of fibers share the mux pid, so the
     by-handle index (a 1:1 map) stays out of it. *)
  Hashtbl.replace t.sessions_by_client p.Proc.pid session;
  p.Proc.exit_hooks <- (fun _ -> detach_session t session) :: p.Proc.exit_hooks;
  let ms =
    {
      ms_session = session;
      ms_aspace;
      ms_sp = secret_stack_top - 16;
      ms_fp = secret_stack_top - 16;
      ms_fiber = Fiber_fresh;
      ms_queued = false;
    }
  in
  Hashtbl.replace mx.mx_sessions sid ms;
  mx.mx_live <- mx.mx_live + 1;
  mx.mx_attached <- mx.mx_attached + 1;
  if mx.mx_live > mx.mx_peak then mx.mx_peak <- mx.mx_live;
  Clock.charge clock Cost.Pool_admission;
  Trace.emitf (Machine.trace t.machine) ~clock ~actor:"kernel"
    "mux-attach sid=%d module=%s client=%d (%d live, peak %d)" sid
    entry.Registry.image.Smof.mod_name p.Proc.pid mx.mx_live mx.mx_peak;
  Smod_metrics.Counter.incr m_sessions_started;
  Smod_metrics.Counter.incr m_mux_attached;
  sid

type mux_status = {
  mxs_live : int;
  mxs_peak : int;
  mxs_attached : int;
  mxs_suspended : int;
}

let mux_status t =
  Option.map
    (fun mx ->
      let suspended =
        Hashtbl.fold
          (fun _ ms acc ->
            match ms.ms_fiber with Fiber_suspended _ -> acc + 1 | _ -> acc)
          mx.mx_sessions 0
      in
      {
        mxs_live = mx.mx_live;
        mxs_peak = mx.mx_peak;
        mxs_attached = mx.mx_attached;
        mxs_suspended = suspended;
      })
    t.mux

(* The cluster control plane (lib/cluster) hooks admission here: the gate
   runs before any credential or session state is consulted, so a dispatch
   can never race past a pending coherence sync and evaluate under a
   revoked keystore generation or stale policy revision. *)
let run_dispatch_gate t = match t.dispatch_gate with Some gate -> gate () | None -> ()

let sys_start_session t (p : Proc.t) ~desc_addr =
  run_dispatch_gate t;
  let clock = Machine.clock t.machine in
  if Hashtbl.mem t.sessions_by_client p.Proc.pid then
    Errno.raise_errno Errno.EEXIST "smod_start_session: client already has a session";
  let desc = read_descriptor clock p desc_addr in
  let entry =
    match
      Registry.find t.registry ~name:desc.Wire.module_name ~version:desc.Wire.module_version
    with
    | Some e -> e
    | None ->
        Errno.raise_errno Errno.ENOENT
          (Printf.sprintf "module %s v%d" desc.Wire.module_name desc.Wire.module_version)
  in
  Clock.charge clock Cost.Registry_lookup;
  let credential =
    match Credential.of_bytes desc.Wire.credential with
    | c -> c
    | exception Credential.Malformed m -> Errno.raise_errno Errno.EINVAL ("credential: " ^ m)
  in
  Clock.charge clock Cost.Cred_check;
  if not (Credential.verify_signatures t.keystore credential) then
    Errno.raise_errno Errno.EACCES "credential signature verification failed";
  (* Establishment-time policy check (throwaway state: establishing a
     session must not consume per-call quota). *)
  check_policy_or_deny t ~policy:entry.Registry.policy
    ~state:(Policy.initial_state entry.Registry.policy)
    ~credential
    ~attrs:
      ([
         ("phase", "session");
         ("module", entry.Registry.image.Smof.mod_name);
         ("principal", credential.Credential.principal);
       ]
      @ origin_attr_pairs
          (origin_of_client t ~client_pid:p.Proc.pid ~transport:"attach"));
  (* §4.1 approach 2: if the client had a plain image of this library
     mapped, forcibly unmap it and deny later re-mapping. *)
  List.iter
    (fun (e : Aspace.entry) ->
      if e.Aspace.name = "lib:" ^ entry.Registry.image.Smof.mod_name then
        Aspace.remove_range p.Proc.aspace ~start_addr:e.Aspace.start_addr
          ~size:(e.Aspace.end_addr - e.Aspace.start_addr))
    (Aspace.entries p.Proc.aspace);
  (* Routing: the effects multiplexer (when enabled) takes every new
     session as a fiber; else with smodd installed the broker multiplexes
     this client onto the pool; otherwise (or if it declines) fork a
     fresh handle per session, the paper's own model. *)
  if session_mux_enabled t then mux_attach t p entry credential
  else
    match t.broker with
    | Some broker -> (
        match broker p entry credential with
        | Some sid -> sid
        | None -> cold_start_session t p entry credential)
    | None -> cold_start_session t p entry credential

(* ------------------------------------------------------------------ *)
(* sys_smod_session_info (303) — handle side                           *)
(* ------------------------------------------------------------------ *)

let sys_session_info t (p : Proc.t) =
  let session =
    match session_of_handle t ~handle_pid:p.Proc.pid with
    | Some s -> s
    | None -> Errno.raise_errno Errno.EPERM "smod_session_info: caller is not a handle"
  in
  let client = Machine.proc_exn t.machine session.client_pid in
  (* Forcibly unmap the handle's data/heap/stack and share the client's
     pages over the same range (uvmspace_force_share). *)
  Aspace.force_share ~client:client.Proc.aspace ~handle:p.Proc.aspace ~lo:Layout.share_lo
    ~hi:Layout.share_hi;
  session.established <- true;
  Trace.emitf (Machine.trace t.machine) ~clock:(Machine.clock t.machine) ~actor:p.Proc.name
    "session_info: pair %d/%d sharing [0x%08x,0x%08x)" session.client_pid session.handle_pid
    Layout.share_lo Layout.share_hi;
  if session.client_waiting_handshake then begin
    session.client_waiting_handshake <- false;
    Machine.wakeup t.machine session.client_pid
  end

(* ------------------------------------------------------------------ *)
(* sys_smod_handle_info (304) — client side                            *)
(* ------------------------------------------------------------------ *)

let sys_handle_info t (p : Proc.t) ~info_addr =
  let session =
    match session_of_client t ~client_pid:p.Proc.pid with
    | Some s -> s
    | None -> Errno.raise_errno Errno.EPERM "smod_handle_info: no session"
  in
  while not session.established do
    session.client_waiting_handshake <- true;
    Effect.perform (Sched.Block (Sched.Custom "smod-handshake"))
  done;
  let info =
    {
      Wire.m_id = session.m_id;
      handle_pid = session.handle_pid;
      req_qid = session.req_qid;
      rep_qid = session.rep_qid;
    }
  in
  Clock.charge (Machine.clock t.machine) (Cost.Copy_bytes Wire.handle_info_size);
  Aspace.write_bytes p.Proc.aspace ~addr:info_addr (Wire.handle_info_to_bytes info)

(* ------------------------------------------------------------------ *)
(* sys_smod_call (307) — the indirect dispatch (Figure 3)              *)
(* ------------------------------------------------------------------ *)

type saved_prot = { entry_start : int; entry_size : int; old_prot : Prot.t }

let apply_call_mitigation t (client : Proc.t) =
  match t.toctou with
  | No_mitigation -> `None
  | Dequeue_client_threads ->
      `Dequeued (Machine.suspend_address_space t.machine client.Proc.aspace ~except:client.Proc.pid)
  | Unmap_during_call ->
      (* Revoke the client's own access to its data/heap/stack for the
         duration of the call; the handle's mappings are unaffected. *)
      let saved =
        List.filter_map
          (fun (e : Aspace.entry) ->
            match e.Aspace.kind with
            | Aspace.Data | Aspace.Heap | Aspace.Stack ->
                let s =
                  {
                    entry_start = e.Aspace.start_addr;
                    entry_size = e.Aspace.end_addr - e.Aspace.start_addr;
                    old_prot = e.Aspace.prot;
                  }
                in
                Aspace.protect_range client.Proc.aspace ~start_addr:s.entry_start
                  ~size:s.entry_size ~prot:Prot.none;
                Some s
            | Aspace.Text | Aspace.Secret | Aspace.Mmap -> None)
          (Aspace.entries client.Proc.aspace)
      in
      `Protected saved

let undo_call_mitigation t (client : Proc.t) = function
  | `None -> ()
  | `Dequeued pids -> Machine.resume_pids t.machine pids
  | `Protected saved ->
      List.iter
        (fun s ->
          Aspace.protect_range client.Proc.aspace ~start_addr:s.entry_start ~size:s.entry_size
            ~prot:s.old_prot)
        saved

let sys_call t (p : Proc.t) ~framep ~rtnaddr ~m_id ~func_id =
  run_dispatch_gate t;
  let clock = Machine.clock t.machine in
  let t0_us = Clock.now_us clock in
  let session =
    match session_of_client t ~client_pid:p.Proc.pid with
    | Some s -> s
    | None -> Errno.raise_errno Errno.EPERM "smod_call: no session"
  in
  if session.detached || not session.established then
    Errno.raise_errno Errno.EINVAL "smod_call: session not established";
  (* Mux fibers have no queue pair; the scalar path would hang on qid 0. *)
  if session.mux then Errno.raise_errno Errno.EPERM "smod_call: mux sessions are ring-only";
  (match Machine.proc t.machine session.handle_pid with
  | Some h when not (Proc.is_zombie h) -> ()
  | Some _ | None ->
      detach_session t session;
      Errno.raise_errno Errno.EIDRM "smod_call: handle process is gone");
  if session.m_id <> m_id then Errno.raise_errno Errno.EINVAL "smod_call: wrong module id";
  (* The §5 future-work fast path skips the re-verification only when the
     policy is stateless-permissive: its answer cannot change after
     session establishment. *)
  let fast_path_applies =
    t.fast_path
    &&
    match session.entry.Registry.policy with
    | Policy.Always_allow | Policy.Session_lifetime -> true
    | Policy.Call_quota _ | Policy.Rate_limit _ | Policy.Time_window _ | Policy.Keynote _
    | Policy.All_of _ ->
        false
  in
  if not fast_path_applies then begin
    let func_name =
      match Registry.symbol_of_func_id session.entry func_id with
      | Some sym -> sym.Smof.sym_name
      | None -> Errno.raise_errno Errno.EINVAL "smod_call: bad funcID"
    in
    (* smodd's policy-decision cache: only consulted when the decision is
       a pure function of (credential, module, function, policy revision)
       — stateful or per-call-attribute policies always re-evaluate. *)
    let cache =
      match t.policy_cache with
      | Some hooks
        when Policy.cacheable session.entry.Registry.policy
             && Policy.credential_cacheable session.credential ->
          Some hooks
      | Some _ | None -> None
    in
    let cached =
      match cache with Some hooks -> hooks.cache_lookup session ~func_name | None -> None
    in
    match cached with
    | Some Cache_allow -> ()
    | Some (Cache_deny reason) ->
        session.denied_calls <- session.denied_calls + 1;
        Smod_metrics.Counter.incr m_calls_denied;
        count_func ~denied:true
          ~mod_name:session.entry.Registry.image.Smof.mod_name ~func_name;
        Errno.raise_errno Errno.EACCES reason
    | None -> (
        let origin = origin_of t session ~transport:"msgq" in
        let attrs =
          [
            ("phase", "call");
            ("function", func_name);
            ("module", session.entry.Registry.image.Smof.mod_name);
            ("calls_so_far", string_of_int session.calls);
          ]
          @ origin_attr_pairs origin
        in
        try
          (match fused_of t session ~transport:"msgq" with
          | Some ctx ->
              (* Fused path: the invariant prefix was charged when the
                 snapshot was armed (and is reused until invalidation);
                 this call pays residue opcodes only. *)
              check_fused_or_deny t ~ctx ~origin ~state:session.policy_state
                ~credential:session.credential ~attrs
          | None -> (
              match policy_of t session with
              | Some compiled ->
                  (* Compiled path: the credential chain was verified when the
                     program was compiled, so no per-call Cred_check. *)
                  check_compiled_or_deny t ~compiled ~state:session.policy_state
                    ~credential:session.credential ~attrs
              | None ->
                  (* Per-call revalidation: the kernel "will then verify that p
                     did provide the proper credentials" (§3.1). *)
                  Clock.charge clock Cost.Cred_check;
                  check_policy_or_deny t ~policy:session.entry.Registry.policy
                    ~state:session.policy_state ~credential:session.credential ~attrs));
          match cache with
          | Some hooks -> hooks.cache_store session ~func_name Cache_allow
          | None -> ()
        with Errno.Error (errno, msg) as denial ->
          (match cache with
          | Some hooks when errno = Errno.EACCES ->
              hooks.cache_store session ~func_name (Cache_deny msg)
          | Some _ | None -> ());
          session.denied_calls <- session.denied_calls + 1;
          Smod_metrics.Counter.incr m_calls_denied;
          count_func ~denied:true
            ~mod_name:session.entry.Registry.image.Smof.mod_name ~func_name;
          raise denial)
  end
  else if Registry.symbol_of_func_id session.entry func_id = None then
    Errno.raise_errno Errno.EINVAL "smod_call: bad funcID";
  session.calls <- session.calls + 1;
  Smod_metrics.Counter.incr m_calls;
  (match Registry.symbol_of_func_id session.entry func_id with
  | Some sym ->
      count_func ~denied:false ~mod_name:session.entry.Registry.image.Smof.mod_name
        ~func_name:sym.Smof.sym_name
  | None -> ());
  let mitigation = apply_call_mitigation t p in
  let request =
    {
      Wire.func_id;
      (* Figure 3: the kernel technically only needs client_FP_1; arg1
         sits two words above the saved frame pointer. *)
      args_base = framep + 8;
      client_sp = p.Proc.sp;
      client_fp = framep;
    }
  in
  ignore rtnaddr;
  Machine.msgsnd t.machine p ~qid:session.req_qid ~mtype:1 (Wire.request_to_bytes request);
  (* Mixed-mode: a ring-engaged handle never blocks in msgrcv — it finds
     queued requests by depth from its serve loop — so kick its waitq. *)
  (match session.ring with
  | Some rs -> ignore (Machine.wake t.machine rs.r_handle_wq)
  | None -> ());
  let _, payload = Machine.msgrcv t.machine p ~qid:session.rep_qid ~mtype:1 in
  undo_call_mitigation t p mitigation;
  Smod_metrics.Histogram.observe m_call_us (Clock.now_us clock -. t0_us);
  let reply = Wire.reply_of_bytes payload in
  match reply.Wire.status with
  | 0 -> reply.Wire.retval
  | 1 -> Errno.raise_errno Errno.EFAULT "smod_call: module function faulted"
  | 2 -> Errno.raise_errno Errno.EINVAL "smod_call: no such function"
  | 3 -> Errno.raise_errno Errno.ENOSYS "smod_call: native body not bound"
  | 4 -> Errno.raise_errno Errno.EACCES "smod_call: module text integrity check failed"
  | s -> Errno.raise_errno Errno.EINVAL (Printf.sprintf "smod_call: bad status %d" s)

(* ------------------------------------------------------------------ *)
(* sys_smod_call_batch (322) — the dispatch-ring fast path             *)
(* ------------------------------------------------------------------ *)

(* Bind the session to the client's registered ring on the first batch
   trap after syscall 321.  The kernel attaches its own view over the
   client's pages; the two wait queues are created here and live for the
   session. *)
let bind_session_ring t (p : Proc.t) session =
  match session.ring with
  | Some rs -> rs
  | None -> (
      match Machine.ring_registration t.machine ~pid:p.Proc.pid with
      | None -> Errno.raise_errno Errno.EINVAL "smod_call_batch: no ring registered"
      | Some (base, nslots) -> (
          (* Geometry comes from the registration pinned at setup; a
             header nslots word rewritten since then is tampering, not a
             bigger ring — of_registration rejects the mismatch. *)
          match Ring.of_registration p.Proc.aspace ~base ~nslots with
          | None -> Errno.raise_errno Errno.EINVAL "smod_call_batch: ring header corrupt"
          | Some ring ->
              let rs =
                {
                  r_ring = ring;
                  r_client_wq = Sched.waitq (Printf.sprintf "ring-client-%d" session.sid);
                  r_handle_wq = Sched.waitq (Printf.sprintf "ring-handle-%d" session.sid);
                  r_handle_engaged = false;
                }
              in
              session.ring <- Some rs;
              (* The handle may be parked in a legacy blocking msgrcv from
                 before the ring existed; a zero-byte doorbell bounces it
                 into the ring-aware serve loop. *)
              (try
                 Machine.msgsnd t.machine p ~qid:session.req_qid ~mtype:ring_doorbell_mtype
                   (Bytes.create 0)
               with Errno.Error _ -> ());
              rs))

(* The admission decider for one batch: evaluates policy once per
   distinct (credential, func) for cacheable policies — the per-batch
   amortization of the policy cost.  Stateful policies (quota, rate,
   time-window, volatile Keynote) are forced through a per-slot
   evaluation so their ordering semantics match the per-call path.
   Shared by the batch trap and the kernel poller; the memo is fresh per
   call, so each sweep/batch amortizes within itself only — exactly the
   historical per-trap behaviour. *)
let batch_decider t session ~transport =
  let clock = Machine.clock t.machine in
  (* Origin and (when fusion is on) the armed snapshot are batch-invariant:
     resolve both once per decider, not per slot. *)
  let origin = origin_of t session ~transport in
  let fused = fused_of t session ~transport in
  let fast_path_applies =
    t.fast_path
    &&
    match session.entry.Registry.policy with
    | Policy.Always_allow | Policy.Session_lifetime -> true
    | Policy.Call_quota _ | Policy.Rate_limit _ | Policy.Time_window _ | Policy.Keynote _
    | Policy.All_of _ ->
        false
  in
  let policy_cacheable = Policy.cacheable session.entry.Registry.policy in
  let cache =
    match t.policy_cache with
    | Some hooks when policy_cacheable && Policy.credential_cacheable session.credential ->
        Some hooks
    | Some _ | None -> None
  in
  let memo : (int, cached_decision) Hashtbl.t = Hashtbl.create 4 in
  fun func_id ->
    match Registry.symbol_of_func_id session.entry func_id with
    | None -> Cache_deny "no such function"
    | Some _ when fast_path_applies -> Cache_allow
    | Some sym -> (
        let func_name = sym.Smof.sym_name in
        let memoized =
          if policy_cacheable then Hashtbl.find_opt memo func_id else None
        in
        match memoized with
        | Some d -> d
        | None ->
            let d =
              match
                match cache with
                | Some hooks -> hooks.cache_lookup session ~func_name
                | None -> None
              with
              | Some d -> d
              | None -> (
                  let attrs =
                    [
                      ("phase", "call");
                      ("function", func_name);
                      ("module", session.entry.Registry.image.Smof.mod_name);
                      ("calls_so_far", string_of_int session.calls);
                    ]
                    @ origin_attr_pairs origin
                  in
                  try
                    (match fused with
                    | Some ctx ->
                        (* Fused path: per-slot residue only; the prefix was
                           charged once when the snapshot was armed. *)
                        check_fused_or_deny t ~ctx ~origin
                          ~state:session.policy_state
                          ~credential:session.credential ~attrs
                    | None -> (
                        match policy_of t session with
                        | Some compiled ->
                            (* Compiled path: chain verification was hoisted to
                               compile time — no per-slot Cred_check. *)
                            check_compiled_or_deny t ~compiled
                              ~state:session.policy_state
                              ~credential:session.credential ~attrs
                        | None ->
                            Clock.charge clock Cost.Cred_check;
                            check_policy_or_deny t
                              ~policy:session.entry.Registry.policy
                              ~state:session.policy_state
                              ~credential:session.credential ~attrs));
                    (match cache with
                    | Some hooks -> hooks.cache_store session ~func_name Cache_allow
                    | None -> ());
                    Cache_allow
                  with Errno.Error (errno, msg) ->
                    (match cache with
                    | Some hooks when errno = Errno.EACCES ->
                        hooks.cache_store session ~func_name (Cache_deny msg)
                    | Some _ | None -> ());
                    Cache_deny msg)
            in
            if policy_cacheable then Hashtbl.replace memo func_id d;
            d)

(* E25 batch-major pre-pass: when vectorization is on and the session's
   armed fused context is vector-eligible, the whole batch's verdicts are
   computed lane-major — SoA columns gathered from the kernel's own read
   of each submitted slot, one vector pass per residue opcode — before
   the stamp loop consumes them positionally.  Returns a seq-indexed
   lookup; [fun _ -> None] (the slot-major decider runs as usual) when
   the batch cannot benefit or cannot be proven equivalent:

   - fewer than two evaluable lanes (honest scalar fallback at N=1);
   - the stateless fast path or the smodd decision cache already reduces
     the batch to cheaper-than-vector work;
   - the tree is not {!Policy.vector_eligible} (volatile residue reads,
     clock-dependent arms, unplanned arms);
   - a cacheable policy's batch has fewer than two distinct functions —
     the decider's per-batch memo already evaluates once per function,
     so vectorizing a single-function batch would be a regression.

   For cacheable policies lanes are deduplicated by function and the
   verdicts broadcast, matching the decider's memo exactly (same
   evaluation count, same state: cacheable policies have none). *)
let vector_prestamp t session ring ~transport ~stamped0 ~limit =
  let no_pre = fun (_ : int) -> None in
  if not (t.vectorize_policies && t.compile_policies && t.fuse_policies) then no_pre
  else if limit - stamped0 < 2 then no_pre
  else if
    t.fast_path
    &&
    match session.entry.Registry.policy with
    | Policy.Always_allow | Policy.Session_lifetime -> true
    | _ -> false
  then no_pre
  else begin
    let policy_cacheable = Policy.cacheable session.entry.Registry.policy in
    let smodd_cache_active =
      t.policy_cache <> None && policy_cacheable
      && Policy.credential_cacheable session.credential
    in
    if smodd_cache_active then no_pre
    else
      match fused_of t session ~transport with
      | None -> no_pre
      | Some ctx when not (Policy.vector_eligible ctx) -> no_pre
      | Some ctx -> (
          let origin = origin_of t session ~transport in
          let opairs = origin_attr_pairs origin in
          let mod_name = session.entry.Registry.image.Smof.mod_name in
          let calls0 = string_of_int session.calls in
          (* Gather the function column.  Slots that fail the structural
             checks (torn write, wrong m_id, unknown function) are left
             to the stamp loop, which denies them before any policy
             evaluation — exactly the slot-major order, and the
             lane-divergence ladder's "deny early" case. *)
          let slots = ref [] in
          for seq = limit - 1 downto stamped0 do
            match Ring.submitted_info ring ~seq with
            | Some (slot_m_id, func_id) when slot_m_id = session.m_id -> (
                match Registry.symbol_of_func_id session.entry func_id with
                | Some sym -> slots := (seq, func_id, sym.Smof.sym_name) :: !slots
                | None -> ())
            | Some _ | None -> ()
          done;
          let slots = !slots in
          let lane_attrs func_name =
            [
              ("phase", "call");
              ("function", func_name);
              ("module", mod_name);
              ("calls_so_far", calls0);
            ]
            @ opairs
          in
          let decision_of = function
            | Ok () -> Cache_allow
            | Error (d : Policy.denial) ->
                Cache_deny
                  (Printf.sprintf "policy %s: %s" (Policy.describe d.Policy.policy)
                     d.Policy.reason)
          in
          let run_lanes keys =
            (* One lane per key, in order; returns decisions positionally. *)
            let lanes =
              Array.of_list
                (List.map
                   (fun (_, name) ->
                     { Policy.vl_origin = origin; vl_attrs = lane_attrs name })
                   keys)
            in
            let clock = Machine.clock t.machine in
            Policy.check_vector ~clock ~now_us:(Clock.now_us clock)
              ~credential:session.credential ~width:t.vector_width ~lanes ctx
              session.policy_state
            |> Array.map decision_of
          in
          if policy_cacheable then begin
            let distinct = ref [] in
            List.iter
              (fun (_, func_id, name) ->
                if not (List.mem_assoc func_id !distinct) then
                  distinct := (func_id, name) :: !distinct)
              slots;
            let distinct = List.rev !distinct in
            if List.length distinct < 2 then no_pre
            else begin
              let verdicts = run_lanes distinct in
              let by_func = Hashtbl.create 8 in
              List.iteri
                (fun i (func_id, _) -> Hashtbl.replace by_func func_id verdicts.(i))
                distinct;
              let by_seq = Hashtbl.create 16 in
              List.iter
                (fun (seq, func_id, _) ->
                  match Hashtbl.find_opt by_func func_id with
                  | Some d -> Hashtbl.replace by_seq seq (func_id, d)
                  | None -> ())
                slots;
              Hashtbl.find_opt by_seq
            end
          end
          else if List.length slots < 2 then no_pre
          else begin
            let verdicts = run_lanes (List.map (fun (_, f, n) -> (f, n)) slots) in
            let by_seq = Hashtbl.create 16 in
            List.iteri
              (fun i (seq, func_id, _) -> Hashtbl.replace by_seq seq (func_id, verdicts.(i)))
              slots;
            Hashtbl.find_opt by_seq
          end)
  end

(* Stamp every submitted-but-unstamped slot in [stamped0, limit):
   identical charge order on the trap path ([per_slot] is a no-op there)
   and the poller path (which charges {!Cost.Poll_slot_scan} per slot).
   [pre] is the vector pre-pass's verdict table — consulted positionally,
   with a function-match guard so a slot whose words changed between
   gather and stamp (impossible within one trap, but belt-and-braces)
   falls back to the slot-major decider.  Returns (slots examined,
   slots admitted). *)
let stamp_submitted t session ring ~decide ~pre ~per_slot ~stamped0 ~limit =
  let pid = session.client_pid in
  let n = ref 0 and allowed = ref 0 in
  for seq = stamped0 to limit - 1 do
    per_slot ();
    incr n;
    (* Every decision is recorded in the kernel-private shadow
       (Machine.ring_record_stamp) — that record, not the ring words
       rewritten below, is what the handle's claim acts on. *)
    (match Ring.submitted_info ring ~seq with
    | None ->
        (* Torn or never-written slot below head: fail it kernel-side so
           the client's in-order reap is never stuck on garbage. *)
        Machine.ring_record_stamp t.machine ~pid ~seq ~m_id:0 ~func_id:0 ~allow:false;
        Ring.kernel_complete ring ~seq ~status:5
    | Some (slot_m_id, func_id) ->
        if slot_m_id <> session.m_id then begin
          session.denied_calls <- session.denied_calls + 1;
          Smod_metrics.Counter.incr m_calls_denied;
          Smod_metrics.Counter.incr m_ring_denied;
          Machine.ring_record_stamp t.machine ~pid ~seq ~m_id:slot_m_id ~func_id
            ~allow:false;
          Ring.kernel_complete ring ~seq ~status:6
        end
        else begin
          let count_slot ~denied =
            match Registry.symbol_of_func_id session.entry func_id with
            | Some sym ->
                count_func ~denied ~mod_name:session.entry.Registry.image.Smof.mod_name
                  ~func_name:sym.Smof.sym_name
            | None -> ()
          in
          let verdict =
            match pre seq with
            | Some (pf, d) when pf = func_id -> d
            | Some _ | None -> decide func_id
          in
          match verdict with
          | Cache_allow ->
              session.calls <- session.calls + 1;
              Smod_metrics.Counter.incr m_calls;
              count_slot ~denied:false;
              incr allowed;
              Machine.ring_record_stamp t.machine ~pid ~seq ~m_id:slot_m_id ~func_id
                ~allow:true;
              Ring.stamp ring ~seq ~allow:true
          | Cache_deny _ ->
              session.denied_calls <- session.denied_calls + 1;
              Smod_metrics.Counter.incr m_calls_denied;
              Smod_metrics.Counter.incr m_ring_denied;
              count_slot ~denied:true;
              Machine.ring_record_stamp t.machine ~pid ~seq ~m_id:slot_m_id ~func_id
                ~allow:false;
              Ring.kernel_complete ring ~seq ~status:6
        end)
  done;
  (!n, !allowed)

(* Post-stamp wake: hand the freshly admitted slots to whoever executes
   them.  Mux sessions go to the fiber scheduler; process-backed sessions
   get their handle waitq woken, falling back to an mtype-3 doorbell
   message while the handle is still in its legacy blocking msgrcv.
   [sender] supplies the process context msgsnd needs — the trapping
   client on the batch path, the poller proc on the zero-trap path. *)
let wake_session_server t (sender : Proc.t) (session : session) rs =
  if session.mux then mux_notify t session
  else begin
    let woken = Machine.wake t.machine rs.r_handle_wq in
    if woken > 0 then Smod_metrics.Counter.incr m_ring_doorbell_wakes
    else if not rs.r_handle_engaged then begin
      (* Handle is still in its legacy blocking msgrcv: only a message
         can unblock it.  This costs one msgsnd — once, on the first
         batch of a session — and nothing on the steady-state path. *)
      Smod_metrics.Counter.incr m_ring_doorbell_fallbacks;
      try
        Machine.msgsnd t.machine sender ~qid:session.req_qid ~mtype:ring_doorbell_mtype
          (Bytes.create 0)
      with Errno.Error _ -> ()
    end
    (* else: engaged and mid-spin — it will see the stamped slots on its
       next work-available check without any kick. *)
  end

let sys_call_batch t (p : Proc.t) ~m_id ~max_slots =
  run_dispatch_gate t;
  let session =
    match session_of_client t ~client_pid:p.Proc.pid with
    | Some s -> s
    | None -> Errno.raise_errno Errno.EPERM "smod_call_batch: no session"
  in
  if session.detached || not session.established then
    Errno.raise_errno Errno.EINVAL "smod_call_batch: session not established";
  (match Machine.proc t.machine session.handle_pid with
  | Some h when not (Proc.is_zombie h) -> ()
  | Some _ | None ->
      detach_session t session;
      Errno.raise_errno Errno.EIDRM "smod_call_batch: handle process is gone");
  if session.m_id <> m_id then
    Errno.raise_errno Errno.EINVAL "smod_call_batch: wrong module id";
  (* The TOCTOU mitigations bracket each call with an unmap/dequeue of
     the client — meaningless when the client keeps running to submit
     more slots.  Force such configurations onto the per-call path. *)
  if t.toctou <> No_mitigation then
    Errno.raise_errno Errno.EPERM "smod_call_batch: TOCTOU mitigation forces per-call path";
  let rs = bind_session_ring t p session in
  let ring = rs.r_ring in
  let decide = batch_decider t session ~transport:"ring" in
  let stamped0 = Machine.ring_stamped t.machine ~pid:p.Proc.pid in
  (* [head] is a client-writable header word and [max_slots] an
     arbitrary trap argument: clamp the per-trap work by the registered
     geometry so a forged head (or a huge max_slots) cannot drive one
     trap through an unbounded kernel loop. *)
  let budget = max 0 (min max_slots (Ring.nslots ring)) in
  let limit = min (Ring.head ring) (stamped0 + budget) in
  let pre = vector_prestamp t session ring ~transport:"ring" ~stamped0 ~limit in
  let n, allowed =
    stamp_submitted t session ring ~decide ~pre ~per_slot:ignore ~stamped0 ~limit
  in
  if n > 0 then begin
    Smod_metrics.Counter.incr m_ring_batches;
    Smod_metrics.Counter.add m_ring_submits n;
    Smod_metrics.Histogram.observe m_ring_batch_size (float_of_int n)
  end;
  if allowed > 0 then wake_session_server t p session rs;
  n

(* The client stub's slow-path block while waiting for completions:
   returns immediately when no ring is bound (detach tore it down — the
   caller rechecks [session.detached]). *)
let ring_client_wait _t session (p : Proc.t) =
  match session.ring with
  | Some rs -> Sched.wait_on rs.r_client_wq p.Proc.pid
  | None -> ()

let session_ring session =
  match session.ring with Some rs -> Some rs.r_ring | None -> None

(* ------------------------------------------------------------------ *)
(* SQPOLL-style kernel poller (E22)                                    *)
(* ------------------------------------------------------------------ *)

(* Stable sweep order: live established sessions sorted by sid, so a
   sweep's charge sequence is a deterministic function of the session
   population, never of hash-table iteration order. *)
let poller_sessions t =
  Hashtbl.fold
    (fun _ s acc -> if (not s.detached) && s.established then s :: acc else acc)
    t.sessions_by_client []
  |> List.sort (fun a b -> compare a.sid b.sid)

(* Kernel-side ring bind: same pinned-geometry rules as
   [bind_session_ring], but from the poller's context — the client's
   address space is looked up, never trusted from a trap frame, and a
   geometry mismatch is skipped (and counted) rather than raised: there
   is no client trap to fail.  The client still gets its EINVAL the
   moment it traps the doorbell or batch syscall itself. *)
let poller_bind t po (pp : Proc.t) session =
  match session.ring with
  | Some rs -> Some rs
  | None -> (
      match Machine.ring_registration t.machine ~pid:session.client_pid with
      | None -> None
      | Some (base, nslots) -> (
          match Machine.proc t.machine session.client_pid with
          | None -> None
          | Some client -> (
              match Ring.of_registration client.Proc.aspace ~base ~nslots with
              | None ->
                  po.p_geometry_rejects <- po.p_geometry_rejects + 1;
                  None
              | Some ring ->
                  let rs =
                    {
                      r_ring = ring;
                      r_client_wq = Sched.waitq (Printf.sprintf "ring-client-%d" session.sid);
                      r_handle_wq = Sched.waitq (Printf.sprintf "ring-handle-%d" session.sid);
                      r_handle_engaged = false;
                    }
                  in
                  session.ring <- Some rs;
                  (* A process-backed handle may still be blocked in its
                     legacy msgrcv; bounce it into the ring-aware loop.
                     Mux sessions have no queue — the msgsnd fails
                     harmlessly. *)
                  (try
                     Machine.msgsnd t.machine pp ~qid:session.req_qid
                       ~mtype:ring_doorbell_mtype (Bytes.create 0)
                   with Errno.Error _ -> ());
                  Some rs)))

(* One sweep over every live session's ring: charge the fixed sweep
   overhead, then per examined slot the scan cost (stamping charges
   Ring_stamp on top, exactly as the trap path does).  Returns the number
   of slots stamped. *)
let poller_sweep t po (pp : Proc.t) =
  let clock = Machine.clock t.machine in
  Clock.charge clock Cost.Poll_sweep;
  po.p_sweeps <- po.p_sweeps + 1;
  Smod_metrics.Counter.incr m_poll_sweeps;
  let stamped = ref 0 in
  List.iter
    (fun session ->
      try
        if session.detached || not session.established then ()
        else
          match poller_bind t po pp session with
          | None -> ()
          | Some rs ->
              let ring = rs.r_ring in
              let stamped0 = Machine.ring_stamped t.machine ~pid:session.client_pid in
              (* Same forged-head clamp as the trap path: at most one
                 ring's worth of slots per session per sweep. *)
              let limit = min (Ring.head ring) (stamped0 + Ring.nslots ring) in
              if limit > stamped0 then begin
                let decide = batch_decider t session ~transport:"poller" in
                let pre =
                  vector_prestamp t session ring ~transport:"poller" ~stamped0 ~limit
                in
                let n, allowed =
                  stamp_submitted t session ring ~decide ~pre
                    ~per_slot:(fun () -> Clock.charge clock Cost.Poll_slot_scan)
                    ~stamped0 ~limit
                in
                stamped := !stamped + n;
                po.p_slots <- po.p_slots + n;
                Smod_metrics.Counter.add m_poll_slots n;
                Hashtbl.replace po.p_session_slots session.sid
                  (n + Option.value ~default:0 (Hashtbl.find_opt po.p_session_slots session.sid));
                if allowed > 0 then wake_session_server t pp session rs
              end
      with Aspace.Segv _ | Aspace.Prot_violation _ ->
        (* Client died between snapshot and scan: its exit-hook detach
           will drop the stale slots; skip it this sweep. *)
        ())
    (poller_sessions t);
  !stamped

let poller_set_flags t v =
  Hashtbl.iter
    (fun _ s ->
      match s.ring with
      | Some rs -> (
          try Ring.set_need_wakeup rs.r_ring v
          with Aspace.Segv _ | Aspace.Prot_violation _ -> ())
      | None -> ())
    t.sessions_by_client

(* Submissions that raced the park decision: any bound ring whose head is
   past the stamp cursor.  Checked after the flags go up, before the
   poller actually blocks — the no-lost-wakeup handshake. *)
let poller_pending t =
  Hashtbl.fold
    (fun _ s acc ->
      acc
      ||
      (not s.detached) && s.established
      &&
      match s.ring with
      | Some rs -> (
          try Ring.head rs.r_ring > Machine.ring_stamped t.machine ~pid:s.client_pid
          with Aspace.Segv _ | Aspace.Prot_violation _ -> false)
      | None -> false)
    t.sessions_by_client false

let poller_loop t po (pp : Proc.t) =
  let rec loop streak =
    if po.p_run then begin
      let stamped = poller_sweep t po pp in
      if stamped > 0 then begin
        Sched.yield ();
        loop 0
      end
      else begin
        po.p_empty_sweeps <- po.p_empty_sweeps + 1;
        let streak = streak + 1 in
        if streak < t.spin_budget then begin
          Sched.yield ();
          loop streak
        end
        else begin
          (* Park: raise the need-wakeup flags first, then re-check for a
             submission that raced the decision.  No yield between the
             two — the recheck and the block are one scheduling turn, so
             a submitter either finds the flag up (and doorbells) or its
             head bump is seen here. *)
          poller_set_flags t true;
          if poller_pending t then begin
            poller_set_flags t false;
            Sched.yield ();
            loop 0
          end
          else begin
            po.p_parked <- true;
            po.p_parks <- po.p_parks + 1;
            Smod_metrics.Counter.incr m_poll_parks;
            Sched.wait_on po.p_wq pp.Proc.pid;
            po.p_parked <- false;
            if po.p_run then begin
              po.p_wakes <- po.p_wakes + 1;
              Smod_metrics.Counter.incr m_poll_wakes
            end;
            poller_set_flags t false;
            loop 0
          end
        end
      end
    end
    (* else: disabled — fall through and let the proc exit. *)
  in
  loop 0

let kernel_poller_enabled t = t.poller <> None

let set_kernel_poller t enable =
  match t.poller, enable with
  | Some _, true | None, false -> ()
  | Some po, false ->
      po.p_run <- false;
      ignore (Machine.wake t.machine po.p_wq);
      t.poller <- None
  | None, true ->
      let po =
        {
          p_run = true;
          p_pid = 0;
          p_parked = false;
          p_wq = Sched.waitq "smod-poller";
          p_sweeps = 0;
          p_empty_sweeps = 0;
          p_parks = 0;
          p_wakes = 0;
          p_slots = 0;
          p_geometry_rejects = 0;
          p_doorbells = 0;
          p_session_slots = Hashtbl.create 16;
        }
      in
      t.poller <- Some po;
      let pp =
        Machine.spawn t.machine ~daemon:true ~name:"smod-poller" (fun pp ->
            poller_loop t po pp)
      in
      (* The poller is kernel code: ring 0, untouchable. *)
      pp.Proc.no_core_dump <- true;
      pp.Proc.no_ptrace <- true;
      pp.Proc.ring <- 0;
      po.p_pid <- pp.Proc.pid

(* sys_smod_poll_doorbell (323): the one trap the zero-trap path ever
   pays.  Binds (and thereby validates) the caller's ring exactly as the
   batch trap would — forged geometry stays EINVAL under poller mode —
   then wakes the parked poller. *)
let sys_poll_doorbell t (p : Proc.t) =
  let session =
    match session_of_client t ~client_pid:p.Proc.pid with
    | Some s -> s
    | None -> Errno.raise_errno Errno.EPERM "smod_poll_doorbell: no session"
  in
  if session.detached || not session.established then
    Errno.raise_errno Errno.EINVAL "smod_poll_doorbell: session not established";
  let rs = bind_session_ring t p session in
  Clock.charge (Machine.clock t.machine) Cost.Poll_doorbell;
  Ring.set_need_wakeup rs.r_ring false;
  (match t.poller with
  | Some po ->
      po.p_doorbells <- po.p_doorbells + 1;
      Smod_metrics.Counter.incr m_poll_doorbells;
      ignore (Machine.wake t.machine po.p_wq)
  | None -> ());
  0

type poller_status = {
  ps_parked : bool;
  ps_spin_budget : int;
  ps_sweeps : int;
  ps_empty_sweeps : int;
  ps_parks : int;
  ps_wakes : int;
  ps_slots_stamped : int;
  ps_geometry_rejects : int;
  ps_doorbells : int;
  ps_session_slots : (int * int) list;  (* sid, slots stamped; sorted *)
}

let poller_status t =
  Option.map
    (fun po ->
      {
        ps_parked = po.p_parked;
        ps_spin_budget = t.spin_budget;
        ps_sweeps = po.p_sweeps;
        ps_empty_sweeps = po.p_empty_sweeps;
        ps_parks = po.p_parks;
        ps_wakes = po.p_wakes;
        ps_slots_stamped = po.p_slots;
        ps_geometry_rejects = po.p_geometry_rejects;
        ps_doorbells = po.p_doorbells;
        ps_session_slots =
          Hashtbl.fold (fun sid n acc -> (sid, n) :: acc) po.p_session_slots []
          |> List.sort compare;
      })
    t.poller

(* ------------------------------------------------------------------ *)
(* sys_smod_find / add / remove                                        *)
(* ------------------------------------------------------------------ *)

let sys_find t (p : Proc.t) ~name_addr ~version =
  Clock.charge (Machine.clock t.machine) Cost.Registry_lookup;
  let name = Aspace.read_string p.Proc.aspace ~addr:name_addr ~max_len:256 in
  match Registry.find t.registry ~name ~version with
  | Some entry -> entry.Registry.m_id
  | None -> Errno.raise_errno Errno.ENOENT (Printf.sprintf "module %s v%d" name version)

let sys_add t (p : Proc.t) ~info_addr =
  let clock = Machine.clock t.machine in
  if p.Proc.uid <> 0 then Errno.raise_errno Errno.EPERM "smod_add: not root";
  let len = Aspace.read_word p.Proc.aspace ~addr:info_addr in
  if len <= 0 || len > 4 * 1024 * 1024 then Errno.raise_errno Errno.EINVAL "smod_add: size";
  Clock.charge clock (Cost.Copy_bytes len);
  let image_bytes = Aspace.read_bytes p.Proc.aspace ~addr:(info_addr + 4) ~len in
  let image =
    match Smof.of_bytes image_bytes with
    | i -> i
    | exception Smof.Malformed m -> Errno.raise_errno Errno.ENOEXEC ("smod_add: " ^ m)
  in
  if image.Smof.encrypted then
    Errno.raise_errno Errno.EINVAL "smod_add: encrypted images need the trusted tool chain";
  let entry = register t ~image () in
  entry.Registry.m_id

let sys_remove t (p : Proc.t) ~m_id ~cred_addr ~cred_size =
  let clock = Machine.clock t.machine in
  let entry =
    match Registry.find_by_id t.registry m_id with
    | Some e -> e
    | None -> Errno.raise_errno Errno.ENOENT "smod_remove"
  in
  Clock.charge clock (Cost.Copy_bytes cred_size);
  let cred_bytes = Aspace.read_bytes p.Proc.aspace ~addr:cred_addr ~len:cred_size in
  let credential =
    match Credential.of_bytes cred_bytes with
    | c -> c
    | exception Credential.Malformed m -> Errno.raise_errno Errno.EINVAL ("credential: " ^ m)
  in
  Clock.charge clock Cost.Cred_check;
  if not (Credential.verify_signatures t.keystore credential) then
    Errno.raise_errno Errno.EACCES "smod_remove: bad credential signature";
  if credential.Credential.principal <> entry.Registry.admin_principal then
    Errno.raise_errno Errno.EACCES "smod_remove: not the module administrator";
  (* Tear down any sessions using the module, notify the pool layer
     (smodd kills the module's parked handles and evicts its cached
     policy decisions), then drop it. *)
  List.iter
    (fun s -> if s.m_id = m_id then detach_session t s)
    (active_sessions t);
  List.iter (fun hook -> hook ~m_id) t.remove_hooks;
  Smod_metrics.Counter.add m_compile_invalidations (Registry.flush_compiled entry);
  Registry.remove t.registry ~m_id

(* ------------------------------------------------------------------ *)
(* Compiled-policy introspection (smodctl policy status)               *)
(* ------------------------------------------------------------------ *)

type compile_status = {
  cs_m_id : int;
  cs_module : string;
  cs_policy : string;
  cs_policy_rev : int;
  cs_cached : int;
  cs_hits : int;
  cs_misses : int;
  cs_invalidations : int;
  cs_stats : Policy.compiled_stats option;
  cs_fusion : Fuse.stats option;
}

let policy_compile_status t =
  Registry.entries t.registry
  |> List.map (fun (e : Registry.entry) ->
         let stats =
           Hashtbl.fold
             (fun _ c acc ->
               match acc with Some _ -> acc | None -> Some (Policy.compiled_stats c))
             e.Registry.compiled_cache None
         in
         let fusion =
           Hashtbl.fold
             (fun _ c acc ->
               match acc with Some _ -> acc | None -> Policy.fusion_stats c)
             e.Registry.compiled_cache None
         in
         {
           cs_m_id = e.Registry.m_id;
           cs_module = e.Registry.image.Smof.mod_name;
           cs_policy = Policy.describe e.Registry.policy;
           cs_policy_rev = e.Registry.policy_rev;
           cs_cached = Hashtbl.length e.Registry.compiled_cache;
           cs_hits = e.Registry.compile_hits;
           cs_misses = e.Registry.compile_misses;
           cs_invalidations = e.Registry.compile_invalidations;
           cs_stats = stats;
           cs_fusion = fusion;
         })
  |> List.sort (fun a b -> compare a.cs_m_id b.cs_m_id)

(* ------------------------------------------------------------------ *)
(* Installation                                                        *)
(* ------------------------------------------------------------------ *)

let install machine ?keystore () =
  let t =
    {
      machine;
      registry = Registry.create ();
      keystore = (match keystore with Some k -> k | None -> Keystore.create ());
      sessions_by_client = Hashtbl.create 16;
      sessions_by_handle = Hashtbl.create 16;
      pooled_handles_by_pid = Hashtbl.create 16;
      next_sid = 1;
      next_pool_serial = 1;
      toctou = No_mitigation;
      fast_path = false;
      broker = None;
      policy_cache = None;
      remove_hooks = [];
      compile_policies = false;
      fuse_policies = false;
      vectorize_policies = false;
      vector_width = Vexec.default_width;
      dispatch_gate = None;
      spin_budget = default_spin_budget;
      poller = None;
      mux = None;
      mux_enabled = false;
    }
  in
  (* Keystore rotation invalidates every compiled program in the same
     step as the rotation itself: hooks fire synchronously from
     [Keystore.add_principal], before any further call can observe the
     new generation with a stale program (the smodd decision cache flushes
     from its own hook in the same iteration). *)
  Keystore.on_change t.keystore (fun () ->
      List.iter
        (fun e ->
          Smod_metrics.Counter.add m_compile_invalidations (Registry.flush_compiled e))
        (Registry.entries t.registry);
      Hashtbl.iter
        (fun _ s ->
          s.compiled_memo <- None;
          s.fused_memo <- None)
        t.sessions_by_client);
  Machine.register_syscall machine Sysno.smod_find ~name:"smod_find" (fun _m p args ->
      sys_find t p ~name_addr:args.(0) ~version:args.(1));
  Machine.register_syscall machine Sysno.smod_start_session ~name:"smod_start_session"
    (fun _m p args -> sys_start_session t p ~desc_addr:args.(0));
  Machine.register_syscall machine Sysno.smod_session_info ~name:"smod_session_info"
    (fun _m p _args ->
      sys_session_info t p;
      0);
  Machine.register_syscall machine Sysno.smod_handle_info ~name:"smod_handle_info"
    (fun _m p args ->
      sys_handle_info t p ~info_addr:args.(0);
      0);
  Machine.register_syscall machine Sysno.smod_call ~name:"smod_call" (fun _m p args ->
      sys_call t p ~framep:args.(0) ~rtnaddr:args.(1) ~m_id:args.(2) ~func_id:args.(3));
  Machine.register_syscall machine Sysno.smod_call_batch ~name:"smod_call_batch"
    (fun _m p args -> sys_call_batch t p ~m_id:args.(0) ~max_slots:args.(1));
  Machine.register_syscall machine Sysno.smod_poll_doorbell ~name:"smod_poll_doorbell"
    (fun _m p _args -> sys_poll_doorbell t p);
  Machine.register_syscall machine Sysno.smod_add ~name:"smod_add" (fun _m p args ->
      sys_add t p ~info_addr:args.(0));
  Machine.register_syscall machine Sysno.smod_remove ~name:"smod_remove" (fun _m p args ->
      sys_remove t p ~m_id:args.(0) ~cred_addr:args.(1) ~cred_size:args.(2);
      0);
  (* §4.3 execve: detach the requesting client, kill the handle, then let
     the exec proceed. *)
  Machine.add_exec_hook machine (fun _m p _image ->
      match session_of_client t ~client_pid:p.Proc.pid with
      | Some session -> detach_session t session
      | None -> ());
  t
