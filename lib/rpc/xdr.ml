module Clock = Smod_sim.Clock
module Cost = Smod_sim.Cost_model

exception Decode_error of string

(* Observability (lib/metrics): marshalling volume for the RPC baseline —
   the paper attributes most of RPC's 27 us/call to argument copying. *)
let m_scope = Smod_metrics.scope "rpc"
let m_encoded_bytes = Smod_metrics.Scope.counter m_scope "xdr_encoded_bytes"
let m_decoded_bytes = Smod_metrics.Scope.counter m_scope "xdr_decoded_bytes"

let pad4 n = (4 - (n land 3)) land 3

module Encoder = struct
  type t = { buf : Buffer.t; clock : Clock.t option }

  let create ?clock () = { buf = Buffer.create 64; clock }
  let charge t op = match t.clock with Some c -> Clock.charge c op | None -> ()

  let raw_word t v =
    Smod_metrics.Counter.add m_encoded_bytes 4;
    Buffer.add_char t.buf (Char.chr ((v lsr 24) land 0xff));
    Buffer.add_char t.buf (Char.chr ((v lsr 16) land 0xff));
    Buffer.add_char t.buf (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char t.buf (Char.chr (v land 0xff))

  let uint t v =
    charge t Cost.Xdr_encode_word;
    raw_word t (v land 0xFFFFFFFF)

  let int t v = uint t (v land 0xFFFFFFFF)

  let hyper t v =
    charge t Cost.Xdr_encode_word;
    charge t Cost.Xdr_encode_word;
    raw_word t (Int64.to_int (Int64.shift_right_logical v 32));
    raw_word t (Int64.to_int (Int64.logand v 0xFFFFFFFFL))

  let bool t b = uint t (if b then 1 else 0)

  let opaque t data =
    let n = Bytes.length data in
    uint t n;
    charge t (Cost.Xdr_bytes n);
    Smod_metrics.Counter.add m_encoded_bytes (n + pad4 n);
    Buffer.add_bytes t.buf data;
    for _ = 1 to pad4 n do
      Buffer.add_char t.buf '\000'
    done

  let string t s = opaque t (Bytes.of_string s)

  let array t f xs =
    uint t (List.length xs);
    List.iter f xs

  let to_bytes t = Buffer.to_bytes t.buf
end

module Decoder = struct
  type t = { data : bytes; mutable pos : int; clock : Clock.t option }

  let of_bytes ?clock data = { data; pos = 0; clock }
  let charge t op = match t.clock with Some c -> Clock.charge c op | None -> ()
  let remaining t = Bytes.length t.data - t.pos

  let need t n =
    if remaining t < n then raise (Decode_error (Printf.sprintf "need %d bytes at %d" n t.pos))

  let raw_word t =
    need t 4;
    Smod_metrics.Counter.add m_decoded_bytes 4;
    let b i = Char.code (Bytes.get t.data (t.pos + i)) in
    let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    t.pos <- t.pos + 4;
    v

  let uint t =
    charge t Cost.Xdr_decode_word;
    raw_word t

  let int t =
    let v = uint t in
    if v land 0x80000000 <> 0 then v - 0x100000000 else v

  let hyper t =
    charge t Cost.Xdr_decode_word;
    charge t Cost.Xdr_decode_word;
    let hi = raw_word t in
    let lo = raw_word t in
    Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo)

  let bool t =
    match uint t with
    | 0 -> false
    | 1 -> true
    | v -> raise (Decode_error (Printf.sprintf "bad bool %d" v))

  let opaque t =
    let n = uint t in
    if n < 0 || n > 16 * 1024 * 1024 then raise (Decode_error "opaque too large");
    need t (n + pad4 n);
    charge t (Cost.Xdr_bytes n);
    Smod_metrics.Counter.add m_decoded_bytes (n + pad4 n);
    let out = Bytes.sub t.data t.pos n in
    t.pos <- t.pos + n + pad4 n;
    out

  let string t = Bytes.to_string (opaque t)

  let array t f =
    let n = uint t in
    if n < 0 || n > 1_000_000 then raise (Decode_error "array too large");
    List.init n (fun _ -> f t)
end
