module Machine = Smod_kern.Machine
module Proc = Smod_kern.Proc
module Errno = Smod_kern.Errno
module Sched = Smod_kern.Sched
module Clock = Smod_sim.Clock
module Cost = Smod_sim.Cost_model

type endpoint = {
  owner_pid : int;
  mutable inbox : (int * bytes) list;  (* (src_port, payload), oldest first *)
  mutable waiting : int option;  (* pid blocked in recvfrom *)
}

type t = { machine : Machine.t; endpoints : (int, endpoint) Hashtbl.t }

(* Observability (lib/metrics): loopback datagram traffic behind the RPC
   baseline (send/recv pairs and payload volume). *)
let m_scope = Smod_metrics.scope "rpc"
let m_datagrams_sent = Smod_metrics.Scope.counter m_scope "datagrams_sent"
let m_datagrams_received = Smod_metrics.Scope.counter m_scope "datagrams_received"
let m_bytes_sent = Smod_metrics.Scope.counter m_scope "bytes_sent"
let m_bytes_received = Smod_metrics.Scope.counter m_scope "bytes_received"

let create machine = { machine; endpoints = Hashtbl.create 16 }
let machine t = t.machine

let bind t (p : Proc.t) ~port =
  if Hashtbl.mem t.endpoints port then
    Errno.raise_errno Errno.EEXIST (Printf.sprintf "port %d" port);
  Hashtbl.replace t.endpoints port { owner_pid = p.pid; inbox = []; waiting = None }

let unbind t ~port = Hashtbl.remove t.endpoints port

let endpoint_exn t port =
  match Hashtbl.find_opt t.endpoints port with
  | Some e -> e
  | None -> Errno.raise_errno Errno.ENOENT (Printf.sprintf "port %d" port)

let sendto t (_p : Proc.t) ~dst_port ~src_port payload =
  let clock = Machine.clock t.machine in
  let dst = endpoint_exn t dst_port in
  (* sendto(2): trap, socket bookkeeping, copyin, and the loopback stack. *)
  Clock.charge clock Cost.Trap_enter;
  Clock.charge clock Cost.Socket_op;
  Clock.charge clock (Cost.Copy_bytes (Bytes.length payload));
  Clock.charge clock Cost.Udp_send_stack;
  Clock.charge clock Cost.Trap_exit;
  Smod_metrics.Counter.incr m_datagrams_sent;
  Smod_metrics.Counter.add m_bytes_sent (Bytes.length payload);
  dst.inbox <- dst.inbox @ [ (src_port, payload) ];
  match dst.waiting with
  | Some pid ->
      dst.waiting <- None;
      Machine.wakeup t.machine pid
  | None -> ()

let recvfrom t (p : Proc.t) ~port =
  let clock = Machine.clock t.machine in
  let e = endpoint_exn t port in
  if e.owner_pid <> p.pid then Errno.raise_errno Errno.EACCES "recvfrom: not the binder";
  let rec wait () =
    match e.inbox with
    | (src, payload) :: rest ->
        e.inbox <- rest;
        (* recvfrom(2): trap, stack receive path, copyout. *)
        Clock.charge clock Cost.Trap_enter;
        Clock.charge clock Cost.Socket_op;
        Clock.charge clock Cost.Udp_recv_stack;
        Clock.charge clock (Cost.Copy_bytes (Bytes.length payload));
        Clock.charge clock Cost.Trap_exit;
        Smod_metrics.Counter.incr m_datagrams_received;
        Smod_metrics.Counter.add m_bytes_received (Bytes.length payload);
        (src, payload)
    | [] ->
        e.waiting <- Some p.pid;
        Effect.perform (Sched.Block (Sched.Custom "udp-recv"));
        wait ()
  in
  wait ()

let pending t ~port =
  match Hashtbl.find_opt t.endpoints port with Some e -> List.length e.inbox | None -> 0
