(** Minimal JSON tree with a pretty-printing emitter and a strict parser.

    Written by hand so the bench harness's machine-readable artifacts
    (see ISSUE: [BENCH_<date>.json], [bench/baseline.json]) need no
    external dependency.  Integers and floats are distinct constructors so
    counter values round-trip exactly; float emission uses the shortest
    decimal form that parses back to the identical IEEE value. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : ?minify:bool -> t -> string
(** Pretty-printed with two-space indentation unless [minify].
    Raises [Invalid_argument] on non-finite floats (JSON cannot express
    them). *)

val of_string : string -> t
(** Raises {!Parse_error} on malformed input or trailing garbage. *)

(** {1 Accessors} — shallow helpers for decoding; all raise
    {!Parse_error} on shape mismatch unless returning an option. *)

val member : string -> t -> t option
val member_exn : string -> t -> t
val to_list : t -> t list
val get_string : t -> string
val get_int : t -> int

val get_float : t -> float
(** Accepts both [Float] and [Int]. *)

val get_bool : t -> bool
