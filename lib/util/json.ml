(* A small hand-rolled JSON tree, emitter and parser — the bench harness
   serialises its machine-readable artifacts with this instead of pulling
   in an external dependency.  Covers the full JSON grammar; numbers are
   split into [Int] and [Float] so integer counters round-trip exactly,
   and float emission picks the shortest decimal form that parses back to
   the same IEEE value. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal representation that round-trips.  JSON has no
   NaN/Infinity; the bench schema never produces them, so reject early
   rather than emit an unparsable token. *)
let float_token f =
  if not (Float.is_finite f) then invalid_arg "Json: cannot emit non-finite float";
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let short = Printf.sprintf "%.12g" f in
    if float_of_string short = f then short else Printf.sprintf "%.17g" f

let to_buffer ?(minify = false) buf t =
  let nl indent =
    if not minify then begin
      Buffer.add_char buf '\n';
      for _ = 1 to indent do
        Buffer.add_string buf "  "
      done
    end
  in
  let rec emit indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_token f)
    | String s -> escape_string buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            nl (indent + 1);
            emit (indent + 1) item)
          items;
        nl indent;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            nl (indent + 1);
            escape_string buf k;
            Buffer.add_string buf (if minify then ":" else ": ");
            emit (indent + 1) v)
          fields;
        nl indent;
        Buffer.add_char buf '}'
  in
  emit 0 t

let to_string ?minify t =
  let buf = Buffer.create 1024 in
  to_buffer ?minify buf t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type parser_state = { text : string; mutable pos : int }

let fail st fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at offset %d: %s" st.pos m))) fmt

let peek st = if st.pos < String.length st.text then Some st.text.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st
    | _ -> continue_ := false
  done

let expect st c =
  match peek st with
  | Some got when got = c -> advance st
  | Some got -> fail st "expected %c, found %c" c got
  | None -> fail st "expected %c, found end of input" c

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.text && String.sub st.text st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st "invalid literal"

let parse_hex4 st =
  if st.pos + 4 > String.length st.text then fail st "truncated \\u escape";
  let v = ref 0 in
  for i = 0 to 3 do
    let c = st.text.[st.pos + i] in
    let d =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail st "bad hex digit %c in \\u escape" c
    in
    v := (!v * 16) + d
  done;
  st.pos <- st.pos + 4;
  !v

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st "truncated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                let cp = parse_hex4 st in
                let u =
                  match Uchar.of_int cp with u -> u | exception Invalid_argument _ -> Uchar.rep
                in
                Buffer.add_utf_8_uchar buf u
            | c -> fail st "unknown escape \\%c" c);
            loop ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Some ('0' .. '9' | '-' | '+') -> advance st
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance st
    | _ -> continue_ := false
  done;
  if st.pos = start then fail st "expected a number";
  let token = String.sub st.text start (st.pos - start) in
  if !is_float then
    match float_of_string_opt token with
    | Some f -> Float f
    | None -> fail st "bad float %S" token
  else
    match int_of_string_opt token with
    | Some i -> Int i
    | None -> (
        (* Integer syntax too large for the int range: keep the value. *)
        match float_of_string_opt token with
        | Some f -> Float f
        | None -> fail st "bad number %S" token)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          fields := (key, v) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ()
          | Some '}' -> advance st
          | _ -> fail st "expected , or } in object"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Arr []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value st in
          items := v :: !items;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements ()
          | Some ']' -> advance st
          | _ -> fail st "expected , or ] in array"
        in
        elements ();
        Arr (List.rev !items)
      end
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let of_string text =
  let st = { text; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length text then fail st "trailing garbage after document";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let member_exn key t =
  match member key t with
  | Some v -> v
  | None -> raise (Parse_error (Printf.sprintf "missing field %S" key))

let to_list = function Arr items -> items | _ -> raise (Parse_error "expected an array")

let get_string = function
  | String s -> s
  | _ -> raise (Parse_error "expected a string")

let get_int = function Int i -> i | _ -> raise (Parse_error "expected an integer")

let get_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | _ -> raise (Parse_error "expected a number")

let get_bool = function Bool b -> b | _ -> raise (Parse_error "expected a bool")
