module Clock = Smod_sim.Clock
module Cost = Smod_sim.Cost_model
module Sha256 = Smod_crypto.Sha256

(* Observability (lib/metrics): every probe outcome plus each way an
   entry can leave the cache — TTL expiry, capacity eviction, module
   invalidation, keystore flush. *)
let m_scope = Smod_metrics.scope "policy_cache"
let m_hits = Smod_metrics.Scope.counter m_scope "hits"
let m_misses = Smod_metrics.Scope.counter m_scope "misses"
let m_inserts = Smod_metrics.Scope.counter m_scope "inserts"
let m_expirations = Smod_metrics.Scope.counter m_scope "expirations"
let m_evictions = Smod_metrics.Scope.counter m_scope "evictions"
let m_invalidations = Smod_metrics.Scope.counter m_scope "invalidations"
let m_flushes = Smod_metrics.Scope.counter m_scope "flushes"
let m_compiled_hits = Smod_metrics.Scope.counter m_scope "compiled_hits"
let m_compiled_misses = Smod_metrics.Scope.counter m_scope "compiled_misses"
let m_compiled_inserts = Smod_metrics.Scope.counter m_scope "compiled_inserts"

type decision = Allow | Deny of string

type entry = { e_decision : decision; e_m_id : int; e_stored_us : float; e_seq : int }

(* Compiled decision programs, shared across the sessions of one
   credential: no TTL (a program is immutable and its key pins the exact
   policy revision and keystore generation it was compiled against), FIFO
   eviction at the same capacity as the decision table. *)
type centry = { c_compiled : Secmodule.Policy.compiled; c_m_id : int; c_seq : int }

type t = {
  clock : Clock.t;
  ttl_us : float;
  cap : int;
  table : (string, entry) Hashtbl.t;
  order : (string * int) Queue.t;
      (* (key, seq) in insertion order, oldest first, for eviction.  The
         sequence number marks stale records: a key removed by expiry or
         invalidation and later re-stored gets a fresh seq, so eviction
         skips the old record instead of dropping the refreshed entry. *)
  mutable seq : int;
  compiled_table : (string, centry) Hashtbl.t;
  compiled_order : (string * int) Queue.t;
}

let create ~clock ~ttl_us ~capacity =
  if capacity <= 0 then invalid_arg "Policy_cache.create: capacity";
  {
    clock;
    ttl_us;
    cap = capacity;
    table = Hashtbl.create 64;
    order = Queue.create ();
    seq = 0;
    compiled_table = Hashtbl.create 16;
    compiled_order = Queue.create ();
  }

let ttl_us t = t.ttl_us
let capacity t = t.cap
let size t = Hashtbl.length t.table

let credential_digest cred =
  Bytes.to_string (Sha256.digest (Secmodule.Credential.to_bytes cred))

(* Revision and generation are part of the key, not checked at lookup: a
   bumped policy or keystore simply stops producing the old key, and the
   stale entries age out or get evicted. *)
let key ~cred_digest ~func_name ~m_id ~policy_rev ~keystore_gen =
  Printf.sprintf "%s\x00%s\x00%d\x00%d\x00%d" cred_digest func_name m_id policy_rev
    keystore_gen

let lookup t ~cred_digest ~func_name ~m_id ~policy_rev ~keystore_gen =
  Clock.charge t.clock Cost.Policy_cache_probe;
  let k = key ~cred_digest ~func_name ~m_id ~policy_rev ~keystore_gen in
  match Hashtbl.find_opt t.table k with
  | Some e when t.ttl_us <= 0.0 || Clock.now_us t.clock -. e.e_stored_us <= t.ttl_us ->
      Smod_metrics.Counter.incr m_hits;
      Some e.e_decision
  | Some _ ->
      Hashtbl.remove t.table k;
      Smod_metrics.Counter.incr m_expirations;
      Smod_metrics.Counter.incr m_misses;
      None
  | None ->
      Smod_metrics.Counter.incr m_misses;
      None

let rec evict_one t =
  match Queue.take_opt t.order with
  | None -> ()
  | Some (k, seq) -> (
      (* Skip stale records — keys removed by expiry or invalidation, or
         re-stored since (fresh seq) — and evict the oldest live entry. *)
      match Hashtbl.find_opt t.table k with
      | Some e when e.e_seq = seq ->
          Hashtbl.remove t.table k;
          Smod_metrics.Counter.incr m_evictions
      | Some _ | None -> evict_one t)

let store t ~cred_digest ~func_name ~m_id ~policy_rev ~keystore_gen decision =
  Clock.charge t.clock Cost.Policy_cache_insert;
  let k = key ~cred_digest ~func_name ~m_id ~policy_rev ~keystore_gen in
  let seq =
    match Hashtbl.find_opt t.table k with
    | Some e -> e.e_seq  (* refresh in place: the FIFO position is kept *)
    | None ->
        if Hashtbl.length t.table >= t.cap then evict_one t;
        let seq = t.seq in
        t.seq <- t.seq + 1;
        Queue.add (k, seq) t.order;
        seq
  in
  Hashtbl.replace t.table k
    { e_decision = decision; e_m_id = m_id; e_stored_us = Clock.now_us t.clock; e_seq = seq };
  Smod_metrics.Counter.incr m_inserts

(* ------------------------------------------------------------------ *)
(* Compiled-program handles                                            *)
(* ------------------------------------------------------------------ *)

let compiled_key ~cred_digest ~m_id ~policy_rev ~keystore_gen =
  Printf.sprintf "%s\x00%d\x00%d\x00%d" cred_digest m_id policy_rev keystore_gen

let lookup_compiled t ~cred_digest ~m_id ~policy_rev ~keystore_gen =
  (* No clock charge here: the dispatch layer charges one
     Policy_cache_probe per session-memo miss, covering this probe and
     the registry fallback together. *)
  match
    Hashtbl.find_opt t.compiled_table
      (compiled_key ~cred_digest ~m_id ~policy_rev ~keystore_gen)
  with
  | Some e ->
      Smod_metrics.Counter.incr m_compiled_hits;
      Some e.c_compiled
  | None ->
      Smod_metrics.Counter.incr m_compiled_misses;
      None

let rec evict_one_compiled t =
  match Queue.take_opt t.compiled_order with
  | None -> ()
  | Some (k, seq) -> (
      match Hashtbl.find_opt t.compiled_table k with
      | Some e when e.c_seq = seq ->
          Hashtbl.remove t.compiled_table k;
          Smod_metrics.Counter.incr m_evictions
      | Some _ | None -> evict_one_compiled t)

let store_compiled t ~cred_digest ~m_id ~policy_rev ~keystore_gen compiled =
  Clock.charge t.clock Cost.Policy_cache_insert;
  let k = compiled_key ~cred_digest ~m_id ~policy_rev ~keystore_gen in
  let seq =
    match Hashtbl.find_opt t.compiled_table k with
    | Some e -> e.c_seq
    | None ->
        if Hashtbl.length t.compiled_table >= t.cap then evict_one_compiled t;
        let seq = t.seq in
        t.seq <- t.seq + 1;
        Queue.add (k, seq) t.compiled_order;
        seq
  in
  Hashtbl.replace t.compiled_table k { c_compiled = compiled; c_m_id = m_id; c_seq = seq };
  Smod_metrics.Counter.incr m_compiled_inserts

let compiled_size t = Hashtbl.length t.compiled_table

let invalidate_module t ~m_id =
  let victims =
    Hashtbl.fold (fun k e acc -> if e.e_m_id = m_id then k :: acc else acc) t.table []
  in
  List.iter (Hashtbl.remove t.table) victims;
  let cvictims =
    Hashtbl.fold
      (fun k e acc -> if e.c_m_id = m_id then k :: acc else acc)
      t.compiled_table []
  in
  List.iter (Hashtbl.remove t.compiled_table) cvictims;
  let n = List.length victims + List.length cvictims in
  Smod_metrics.Counter.add m_invalidations n;
  n

let flush t =
  let n = Hashtbl.length t.table + Hashtbl.length t.compiled_table in
  Hashtbl.reset t.table;
  Queue.clear t.order;
  Hashtbl.reset t.compiled_table;
  Queue.clear t.compiled_order;
  Smod_metrics.Counter.incr m_flushes;
  n
