(** Hash-based session placement for a sharded smodd deployment.

    [place] is a pure function of (key, shard count) — FNV-1a over the
    key — so every router replica routes a client to the same shard
    without coordination.  The E20 scale-out experiment uses it to
    partition a client population over K independent simulated kernels. *)

val hash : string -> int64
(** FNV-1a. *)

val hash_salted : salt:string -> string -> int64
(** FNV-1a over the key continued through the salt: independent hash
    streams from one key.  The cluster's consistent-hash ring derives its
    vnode points and the second power-of-two-choices candidate here. *)

val place : shards:int -> string -> int
(** Shard index in [0, shards).  Raises [Invalid_argument] when
    [shards < 1]. *)

val partition : shards:int -> string list -> string list array
(** Group keys by {!place}, preserving input order inside each shard. *)
