(* Hash-based session placement for a sharded smodd deployment: route
   each client (by a stable string key — tenant name, credential
   principal) to one of K independent smodd instances, each owning its
   own kernel, pools and caches.

   FNV-1a over the key: cheap, decent diffusion on short human-readable
   names, and trivially portable to a real deployment's router.  The
   placement is a pure function of (key, shards), so every router replica
   agrees without coordination — the property the E20 scale-out
   experiment relies on when it drives each shard on its own domain. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let hash key =
  let h = ref fnv_offset in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    key;
  !h

(* Salted variant: one key, many independent hash streams.  The cluster
   Placement module (lib/cluster) derives its consistent-hash vnode
   points and the second power-of-two-choices candidate from these, so
   every placement decision still bottoms out in the same FNV-1a a real
   router would ship. *)
let hash_salted ~salt key =
  let h = ref (hash key) in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    (salt ^ "#");
  !h

let place ~shards key =
  if shards < 1 then invalid_arg "Shard.place: shards must be >= 1";
  Int64.to_int (Int64.unsigned_rem (hash key) (Int64.of_int shards))

let partition ~shards keys =
  let buckets = Array.make shards [] in
  List.iter (fun k -> buckets.(place ~shards k) <- k :: buckets.(place ~shards k)) keys;
  Array.map List.rev buckets
