(** The smodd policy-decision cache.

    [sys_smod_call] re-verifies the caller's credential and re-evaluates
    the module policy on every dispatch (§3.1); the paper's §5 predicts
    this cost grows with policy complexity.  For decisions that are pure
    functions of their inputs ({!Secmodule.Policy.cacheable}), smodd
    memoises the outcome under the key

      (credential digest, function, m_id, policy revision, keystore
       generation)

    so the steady-state call path pays one cache probe instead of a
    credential check plus a full policy walk.  Entries expire after a TTL
    of simulated time, are evicted FIFO at capacity, and are invalidated
    explicitly when the module is removed, its policy swapped (revision
    key), or the keystore changes (generation key + flush). *)

type t

type decision = Allow | Deny of string

val create : clock:Smod_sim.Clock.t -> ttl_us:float -> capacity:int -> t
(** [capacity] must be positive; [ttl_us] non-positive disables expiry. *)

val ttl_us : t -> float
val capacity : t -> int
val size : t -> int

val credential_digest : Secmodule.Credential.t -> string
(** SHA-256 over the credential's canonical byte form — the cache's
    identity for "same principal presenting the same assertions". *)

val lookup :
  t ->
  cred_digest:string ->
  func_name:string ->
  m_id:int ->
  policy_rev:int ->
  keystore_gen:int ->
  decision option
(** Charges one {!Smod_sim.Cost_model.Policy_cache_probe}; counts a
    [policy_cache.hits] or [policy_cache.misses] metric.  An entry older
    than the TTL counts as a miss ([policy_cache.expirations]) and is
    dropped. *)

val store :
  t ->
  cred_digest:string ->
  func_name:string ->
  m_id:int ->
  policy_rev:int ->
  keystore_gen:int ->
  decision ->
  unit
(** Charges one {!Smod_sim.Cost_model.Policy_cache_insert}; evicts the
    oldest entry first when at capacity ([policy_cache.evictions]). *)

(** {2 Compiled-program handles}

    Decision programs ({!Secmodule.Policy.compiled}) cached pool-side, so
    every session a credential opens — across pooled handles — reuses one
    compilation.  Keyed by (credential digest, m_id, policy revision,
    keystore generation); no TTL, since a program is immutable and its
    key pins exactly the inputs it was compiled against. *)

val lookup_compiled :
  t ->
  cred_digest:string ->
  m_id:int ->
  policy_rev:int ->
  keystore_gen:int ->
  Secmodule.Policy.compiled option
(** Charges nothing (the dispatch layer charges one probe per
    session-memo miss); counts [policy_cache.compiled_hits] /
    [policy_cache.compiled_misses]. *)

val store_compiled :
  t ->
  cred_digest:string ->
  m_id:int ->
  policy_rev:int ->
  keystore_gen:int ->
  Secmodule.Policy.compiled ->
  unit
(** Charges one {!Smod_sim.Cost_model.Policy_cache_insert}; FIFO-evicts
    at [capacity]. *)

val compiled_size : t -> int

val invalidate_module : t -> m_id:int -> int
(** Drop every entry for the module — cached decisions and compiled
    programs (the [sys_smod_remove] hook).  Returns the number of entries
    evicted; counts [policy_cache.invalidations]. *)

val flush : t -> int
(** Drop everything, compiled programs included (keystore change).
    Returns the number of entries dropped; counts
    [policy_cache.flushes]. *)
