module Smod = Secmodule.Smod
module Registry = Secmodule.Registry
module Machine = Smod_kern.Machine
module Proc = Smod_kern.Proc
module Errno = Smod_kern.Errno
module Sched = Smod_kern.Sched
module Clock = Smod_sim.Clock
module Smof = Smod_modfmt.Smof
module Keystore = Smod_keynote.Keystore

(* pool.hit / pool.miss are the pair the tests pin exactly: hit = the
   session landed on an already-forked handle, miss = a fresh fork was
   needed.  hit + miss = attached sessions that went through the pool. *)
let m_scope = Smod_metrics.scope "pool"
let m_hit = Smod_metrics.Scope.counter m_scope "hit"
let m_miss = Smod_metrics.Scope.counter m_scope "miss"
let m_attaches = Smod_metrics.Scope.counter m_scope "attaches"
let m_parks = Smod_metrics.Scope.counter m_scope "parks"
let m_spawns = Smod_metrics.Scope.counter m_scope "spawns"
let m_deaths = Smod_metrics.Scope.counter m_scope "deaths"
let m_reclaims = Smod_metrics.Scope.counter m_scope "reclaims"
let m_rejects = Smod_metrics.Scope.counter m_scope "rejects"
let m_waits = Smod_metrics.Scope.counter m_scope "waits"
let m_cancelled = Smod_metrics.Scope.counter m_scope "cancelled"

let m_wait_us =
  Smod_metrics.Scope.histogram
    ~edges:[| 10.; 50.; 100.; 500.; 1_000.; 5_000.; 10_000.; 50_000. |]
    m_scope "attach_wait_us"

type overflow = Reject | Wait

type config = {
  max_handles_per_module : int;
  max_total_handles : int;
  max_queue_depth : int;
  overflow : overflow;
  cache_enabled : bool;
  cache_ttl_us : float;
  cache_capacity : int;
}

let default_config =
  {
    max_handles_per_module = 4;
    max_total_handles = 16;
    max_queue_depth = 64;
    overflow = Wait;
    cache_enabled = true;
    cache_ttl_us = 1_000_000.0;
    cache_capacity = 1024;
  }

type waiter = {
  w_pid : int;
  mutable w_granted : Smod.pooled_handle option;
  mutable w_cancelled : bool;
  mutable w_done : bool;  (* acquire returned (or raised); exit hook is a no-op *)
}

type mod_pool = {
  mp_entry : Registry.entry;
  mutable mp_free : Smod.pooled_handle list;
  mutable mp_handles : int;  (* live handles: parked + reserved + busy *)
  mp_waiters : waiter Queue.t;  (* FIFO; may hold cancelled entries *)
  mutable mp_spawned : int;
  mutable mp_retired : int;
}

type t = {
  smod : Smod.t;
  machine : Machine.t;
  cfg : config;
  pools : (int, mod_pool) Hashtbl.t;  (* m_id -> pool *)
  members : (int, mod_pool * Smod.pooled_handle) Hashtbl.t;
      (* handle pid -> owner.  Source of truth for capacity accounting:
         retire paths unaccount synchronously, the exit hook unaccounts
         lazily, and whichever runs second finds the pid gone. *)
  mutable total_handles : int;
  mutable total_waiters : int;  (* live (non-cancelled) queued clients *)
  cache : Policy_cache.t option;
  cred_digests : (int, string) Hashtbl.t;  (* sid -> credential digest *)
  mutable remove_hook : (m_id:int -> unit) option;
      (* the hook registered on the Smod.t, deregistered by uninstall *)
}

let config t = t.cfg

let pool_for t (entry : Registry.entry) =
  match Hashtbl.find_opt t.pools entry.Registry.m_id with
  | Some mp -> mp
  | None ->
      let mp =
        {
          mp_entry = entry;
          mp_free = [];
          mp_handles = 0;
          mp_waiters = Queue.create ();
          mp_spawned = 0;
          mp_retired = 0;
        }
      in
      Hashtbl.replace t.pools entry.Registry.m_id mp;
      mp

let live_waiters mp = Queue.fold (fun n w -> if w.w_cancelled then n else n + 1) 0 mp.mp_waiters

let rec take_waiter mp =
  match Queue.take_opt mp.mp_waiters with
  | None -> None
  | Some w when w.w_cancelled -> take_waiter mp  (* already uncounted at cancel *)
  | Some w -> Some w

(* Drop a handle from the capacity books.  Returns false if some other
   path (synchronous retire vs the deferred exit hook) got there first. *)
let unaccount t ph =
  let pid = Smod.pooled_handle_pid ph in
  match Hashtbl.find_opt t.members pid with
  | None -> false
  | Some (mp, _) ->
      Hashtbl.remove t.members pid;
      mp.mp_handles <- mp.mp_handles - 1;
      mp.mp_retired <- mp.mp_retired + 1;
      mp.mp_free <- List.filter (fun h -> h != ph) mp.mp_free;
      t.total_handles <- t.total_handles - 1;
      true

let grant t w ph =
  Smod.reserve_pooled_handle ph;
  w.w_granted <- Some ph;
  t.total_waiters <- t.total_waiters - 1;
  Machine.wakeup t.machine w.w_pid

let rec spawn_for t mp =
  let ph =
    Smod.spawn_pooled_handle t.smod ~entry:mp.mp_entry
      ~on_park:(fun ph -> handle_parked t ph)
      ~on_death:(fun ph -> handle_died t ph)
  in
  Hashtbl.replace t.members (Smod.pooled_handle_pid ph) (mp, ph);
  mp.mp_handles <- mp.mp_handles + 1;
  mp.mp_spawned <- mp.mp_spawned + 1;
  t.total_handles <- t.total_handles + 1;
  Smod_metrics.Counter.incr m_spawns;
  ph

(* Handle context, each time a pooled handle frees up: hand it straight
   to the oldest queued client for its module, else park it — unless the
   global cap binds and another module's client is starving in the queue,
   in which case parking would strand that waiter forever (pump can only
   spawn under the cap, and it only runs on handle death).  Retire the
   parking handle instead so the freed slot is granted right away. *)
and handle_parked t ph =
  Smod_metrics.Counter.incr m_parks;
  match Hashtbl.find_opt t.pools (Smod.pooled_handle_entry ph).Registry.m_id with
  | None -> ()  (* module removed; retire already queued for us *)
  | Some mp -> (
      match take_waiter mp with
      | Some w ->
          Smod_metrics.Counter.incr m_hit;
          grant t w ph
      | None ->
          let starving_elsewhere =
            t.total_handles >= t.cfg.max_total_handles
            && Hashtbl.fold
                 (fun _ mp' acc ->
                   acc
                   || (mp' != mp
                      && mp'.mp_handles < t.cfg.max_handles_per_module
                      && live_waiters mp' > 0))
                 t.pools false
          in
          if starving_elsewhere then begin
            ignore (unaccount t ph);
            Smod_metrics.Counter.incr m_reclaims;
            pump t;
            (* Last: when the parking handle is the running process, the
               kill raises Proc_killed out of this very call. *)
            Smod.retire_pooled_handle t.smod ph
          end
          else mp.mp_free <- ph :: mp.mp_free)

and handle_died t ph =
  if unaccount t ph then begin
    Smod_metrics.Counter.incr m_deaths;
    pump t
  end

(* Freed capacity goes to queued clients, least-served module first —
   the per-module fairness half of the admission queue (FIFO within a
   module via take_waiter). *)
and pump t =
  let progress = ref true in
  while !progress && t.total_handles < t.cfg.max_total_handles do
    progress := false;
    let best =
      Hashtbl.fold
        (fun _ mp acc ->
          if live_waiters mp = 0 || mp.mp_handles >= t.cfg.max_handles_per_module then acc
          else
            match acc with
            | Some b
              when (b.mp_handles, b.mp_entry.Registry.m_id)
                   <= (mp.mp_handles, mp.mp_entry.Registry.m_id) ->
                acc
            | _ -> Some mp)
        t.pools None
    in
    match best with
    | None -> ()
    | Some mp -> (
        match take_waiter mp with
        | None -> ()
        | Some w ->
            Smod_metrics.Counter.incr m_miss;
            grant t w (spawn_for t mp);
            progress := true)
  done

(* Client exit hook, registered the moment a waiter joins the admission
   queue: a client killed while blocked must not stay counted in
   total_waiters, and if handle_parked already granted it a handle, that
   handle (reserved, off mp_free, still on the capacity books) must go
   back to the pool instead of leaking. *)
let waiter_client_exited t w =
  if not w.w_done then begin
    match w.w_granted with
    | Some ph ->
        (* Granted but never attached: the grant already uncounted the
           waiter; return the handle to the pool (or the next waiter). *)
        w.w_cancelled <- true;
        Smod_metrics.Counter.incr m_cancelled;
        if not (Smod.pooled_handle_dead ph) then begin
          Smod.unreserve_pooled_handle ph;
          handle_parked t ph
        end
    | None ->
        if not w.w_cancelled then begin
          w.w_cancelled <- true;
          t.total_waiters <- t.total_waiters - 1;
          Smod_metrics.Counter.incr m_cancelled
        end
  end

(* Steal global capacity back from another module's idle handle (the
   donor with the most parked handles).  The retire is synchronous on
   the books even though the kill lands at the victim's next dispatch. *)
let reclaim_idle t ~for_m_id =
  let donor =
    Hashtbl.fold
      (fun m_id mp acc ->
        if m_id = for_m_id || mp.mp_free = [] then acc
        else
          match acc with
          | Some b when List.length b.mp_free >= List.length mp.mp_free -> acc
          | _ -> Some mp)
      t.pools None
  in
  match donor with
  | None -> false
  | Some mp -> (
      match mp.mp_free with
      | [] -> false
      | ph :: _ ->
          ignore (unaccount t ph);
          Smod.retire_pooled_handle t.smod ph;
          Smod_metrics.Counter.incr m_reclaims;
          true)

let saturated_error t =
  match t.cfg.overflow with
  | Reject ->
      Smod_metrics.Counter.incr m_rejects;
      Errno.raise_errno Errno.EAGAIN "smodd: handle pool saturated"
  | Wait ->
      Smod_metrics.Counter.incr m_rejects;
      Errno.raise_errno Errno.EAGAIN "smodd: admission queue full"

(* The session broker: runs in client context inside sys_start_session,
   after the kernel validated the descriptor, credential and
   establishment policy. *)
let acquire t (p : Proc.t) (entry : Registry.entry) =
  let mp = pool_for t entry in
  match mp.mp_free with
  | ph :: rest ->
      mp.mp_free <- rest;
      Smod.reserve_pooled_handle ph;
      Smod_metrics.Counter.incr m_hit;
      ph
  | [] ->
      if mp.mp_handles >= t.cfg.max_handles_per_module then
        (match t.cfg.overflow with Reject -> saturated_error t | Wait -> ())
      else if t.total_handles >= t.cfg.max_total_handles then
        (* At the global cap but under the per-module one: try to evict
           an idle handle parked under some other module. *)
        if not (reclaim_idle t ~for_m_id:entry.Registry.m_id) then
          match t.cfg.overflow with Reject -> saturated_error t | Wait -> ()
        else ();
      if mp.mp_handles < t.cfg.max_handles_per_module && t.total_handles < t.cfg.max_total_handles
      then begin
        Smod_metrics.Counter.incr m_miss;
        let ph = spawn_for t mp in
        Smod.reserve_pooled_handle ph;
        ph
      end
      else begin
        (* overflow = Wait: join the admission queue *)
        if t.total_waiters >= t.cfg.max_queue_depth then saturated_error t;
        let w =
          { w_pid = p.Proc.pid; w_granted = None; w_cancelled = false; w_done = false }
        in
        Queue.add w mp.mp_waiters;
        t.total_waiters <- t.total_waiters + 1;
        Smod_metrics.Counter.incr m_waits;
        p.Proc.exit_hooks <- (fun _ -> waiter_client_exited t w) :: p.Proc.exit_hooks;
        while w.w_granted = None && not w.w_cancelled do
          Effect.perform (Sched.Block (Sched.Custom "smodd-admission"))
        done;
        w.w_done <- true;
        match w.w_granted with
        | Some ph when not (Smod.pooled_handle_dead ph) -> ph
        | _ ->
            (* Module removed (or smodd uninstalled) while queued, or
               granted a handle that was retired before we ran again. *)
            Errno.raise_errno Errno.ENOENT "smodd: module removed while queued"
      end

let broker t p entry credential =
  let clock = Machine.clock t.machine in
  let t0 = Clock.now_us clock in
  let ph = acquire t p entry in
  Smod_metrics.Histogram.observe m_wait_us (Clock.now_us clock -. t0);
  let sid = Smod.attach_pooled t.smod p ph ~credential in
  Smod_metrics.Counter.incr m_attaches;
  if t.cache <> None then begin
    if Hashtbl.length t.cred_digests > 8192 then Hashtbl.reset t.cred_digests;
    Hashtbl.replace t.cred_digests sid (Policy_cache.credential_digest credential)
  end;
  Some sid

(* sys_smod_remove: every handle of the module dies (parked ones now,
   busy ones as soon as their — already detached — session unwinds),
   queued clients fail with ENOENT, and the module's cached decisions
   are dropped. *)
let on_module_remove t ~m_id =
  (match t.cache with Some c -> ignore (Policy_cache.invalidate_module c ~m_id) | None -> ());
  match Hashtbl.find_opt t.pools m_id with
  | None -> ()
  | Some mp ->
      Hashtbl.remove t.pools m_id;
      let victims =
        Hashtbl.fold (fun _ (mp', ph) acc -> if mp' == mp then ph :: acc else acc) t.members []
      in
      List.iter
        (fun ph ->
          ignore (unaccount t ph);
          Smod.retire_pooled_handle t.smod ph)
        victims;
      Queue.iter
        (fun w ->
          if (not w.w_cancelled) && w.w_granted = None then begin
            w.w_cancelled <- true;
            t.total_waiters <- t.total_waiters - 1;
            Smod_metrics.Counter.incr m_cancelled;
            Machine.wakeup t.machine w.w_pid
          end)
        mp.mp_waiters;
      Queue.clear mp.mp_waiters;
      pump t

(* Map the kernel-side cache hooks onto the cache proper.  The digest is
   memoised per session: the credential bytes were already hashed during
   signature verification at establishment, so the probe itself is the
   only per-call cost. *)
let digest_for t (session : Smod.session) =
  match Hashtbl.find_opt t.cred_digests session.Smod.sid with
  | Some d -> d
  | None ->
      let d = Policy_cache.credential_digest session.Smod.credential in
      if Hashtbl.length t.cred_digests > 8192 then Hashtbl.reset t.cred_digests;
      Hashtbl.replace t.cred_digests session.Smod.sid d;
      d

let cache_hooks t cache =
  let keystore_gen () = Keystore.generation (Smod.keystore t.smod) in
  {
    Smod.cache_lookup =
      (fun session ~func_name ->
        match
          Policy_cache.lookup cache ~cred_digest:(digest_for t session) ~func_name
            ~m_id:session.Smod.m_id ~policy_rev:session.Smod.entry.Registry.policy_rev
            ~keystore_gen:(keystore_gen ())
        with
        | Some Policy_cache.Allow -> Some Smod.Cache_allow
        | Some (Policy_cache.Deny reason) -> Some (Smod.Cache_deny reason)
        | None -> None);
    Smod.cache_store =
      (fun session ~func_name decision ->
        let decision =
          match decision with
          | Smod.Cache_allow -> Policy_cache.Allow
          | Smod.Cache_deny reason -> Policy_cache.Deny reason
        in
        Policy_cache.store cache ~cred_digest:(digest_for t session) ~func_name
          ~m_id:session.Smod.m_id ~policy_rev:session.Smod.entry.Registry.policy_rev
          ~keystore_gen:(keystore_gen ()) decision);
    Smod.compiled_lookup =
      (fun session ->
        Policy_cache.lookup_compiled cache ~cred_digest:(digest_for t session)
          ~m_id:session.Smod.m_id ~policy_rev:session.Smod.entry.Registry.policy_rev
          ~keystore_gen:(keystore_gen ()));
    Smod.compiled_store =
      (fun session compiled ->
        Policy_cache.store_compiled cache ~cred_digest:(digest_for t session)
          ~m_id:session.Smod.m_id ~policy_rev:session.Smod.entry.Registry.policy_rev
          ~keystore_gen:(keystore_gen ()) compiled);
  }

let install smod ?(config = default_config) () =
  let machine = Smod.machine smod in
  let cache =
    if config.cache_enabled then
      Some
        (Policy_cache.create ~clock:(Machine.clock machine) ~ttl_us:config.cache_ttl_us
           ~capacity:config.cache_capacity)
    else None
  in
  let t =
    {
      smod;
      machine;
      cfg = config;
      pools = Hashtbl.create 8;
      members = Hashtbl.create 32;
      total_handles = 0;
      total_waiters = 0;
      cache;
      cred_digests = Hashtbl.create 64;
      remove_hook = None;
    }
  in
  Smod.set_session_broker smod (Some (fun p entry credential -> broker t p entry credential));
  (match cache with
   | Some c ->
       Smod.set_policy_cache smod (Some (cache_hooks t c));
       (* Generation is in the key, so a keystore change already misses;
          the flush additionally reclaims the dead entries' space. *)
       Keystore.on_change (Smod.keystore smod) (fun () -> ignore (Policy_cache.flush c))
   | None -> ());
  let remove_hook ~m_id = on_module_remove t ~m_id in
  Smod.add_module_remove_hook smod remove_hook;
  t.remove_hook <- Some remove_hook;
  t

let uninstall t =
  Smod.set_session_broker t.smod None;
  Smod.set_policy_cache t.smod None;
  (match t.remove_hook with
  | Some hook ->
      Smod.remove_module_remove_hook t.smod hook;
      t.remove_hook <- None
  | None -> ());
  (* Wake every queued client first (they fail with ENOENT, exactly as on
     module removal) so nobody stays blocked on a pool that no longer
     exists... *)
  Hashtbl.iter
    (fun _ mp ->
      Queue.iter
        (fun w ->
          if (not w.w_cancelled) && w.w_granted = None then begin
            w.w_cancelled <- true;
            t.total_waiters <- t.total_waiters - 1;
            Smod_metrics.Counter.incr m_cancelled;
            Machine.wakeup t.machine w.w_pid
          end)
        mp.mp_waiters;
      Queue.clear mp.mp_waiters)
    t.pools;
  Hashtbl.reset t.pools;
  (* ...then retire the handles themselves. *)
  let victims = Hashtbl.fold (fun _ (_, ph) acc -> ph :: acc) t.members [] in
  List.iter
    (fun ph ->
      ignore (unaccount t ph);
      Smod.retire_pooled_handle t.smod ph)
    victims;
  (match t.cache with Some c -> ignore (Policy_cache.flush c) | None -> ());
  Hashtbl.reset t.cred_digests

type module_status = {
  ms_m_id : int;
  ms_module : string;
  ms_handles : int;
  ms_parked : int;
  ms_busy : int;
  ms_waiters : int;
  ms_spawned : int;
  ms_retired : int;
  ms_tenants : int;
}

type status = {
  st_modules : module_status list;
  st_total_handles : int;
  st_total_waiters : int;
  st_cache_size : int option;
  st_cache_capacity : int option;
  st_cache_compiled : int option;
  st_ring_batches : int;
  st_ring_submits : int;
  st_ring_stale_drops : int;
  st_spin_budget : int;
}

let status t =
  let modules =
    Hashtbl.fold
      (fun m_id mp acc ->
        let parked = List.length mp.mp_free in
        let tenants =
          Hashtbl.fold
            (fun _ (mp', ph) n -> if mp' == mp then n + Smod.pooled_handle_tenants ph else n)
            t.members 0
        in
        {
          ms_m_id = m_id;
          ms_module = mp.mp_entry.Registry.image.Smof.mod_name;
          ms_handles = mp.mp_handles;
          ms_parked = parked;
          ms_busy = mp.mp_handles - parked;
          ms_waiters = live_waiters mp;
          ms_spawned = mp.mp_spawned;
          ms_retired = mp.mp_retired;
          ms_tenants = tenants;
        }
        :: acc)
      t.pools []
    |> List.sort (fun a b -> compare a.ms_m_id b.ms_m_id)
  in
  (* Ring traffic is recorded in the process-wide metric registry (the
     ring lives in lib/secmodule, below this layer); surfacing it here
     lets the pool table answer "are the pooled tenants on the fast
     path?" in one place. *)
  let ring_counter name = Option.value ~default:0 (Smod_metrics.counter_value name) in
  {
    st_modules = modules;
    st_total_handles = t.total_handles;
    st_total_waiters = t.total_waiters;
    st_cache_size = Option.map Policy_cache.size t.cache;
    st_cache_capacity = Option.map Policy_cache.capacity t.cache;
    st_cache_compiled = Option.map Policy_cache.compiled_size t.cache;
    st_ring_batches = ring_counter "ring.batches";
    st_ring_submits = ring_counter "ring.submits";
    st_ring_stale_drops = ring_counter "ring.stale_drops";
    st_spin_budget = Smod.spin_budget t.smod;
  }

let render_status t =
  let st = status t in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "  mid  module            handles parked busy waiters spawned retired tenants\n";
  List.iter
    (fun ms ->
      Buffer.add_string buf
        (Printf.sprintf "  %3d  %-16s %7d %6d %4d %7d %7d %7d %7d\n" ms.ms_m_id ms.ms_module
           ms.ms_handles ms.ms_parked ms.ms_busy ms.ms_waiters ms.ms_spawned ms.ms_retired
           ms.ms_tenants))
    st.st_modules;
  Buffer.add_string buf
    (Printf.sprintf "  total: %d handle(s), %d waiter(s)" st.st_total_handles st.st_total_waiters);
  (match (st.st_cache_size, st.st_cache_capacity) with
  | Some size, Some cap ->
      Buffer.add_string buf (Printf.sprintf "; policy cache %d/%d entries" size cap);
      (match st.st_cache_compiled with
      | Some n when n > 0 ->
          Buffer.add_string buf (Printf.sprintf " (+%d compiled)" n)
      | _ -> ())
  | _ -> Buffer.add_string buf "; policy cache disabled");
  Buffer.add_string buf
    (Printf.sprintf "; ring: %d call(s) in %d batch(es), %d stale drop(s); spin budget %d"
       st.st_ring_submits st.st_ring_batches st.st_ring_stale_drops st.st_spin_budget);
  Buffer.add_char buf '\n';
  Buffer.contents buf
