(** smodd — the session-multiplexing service layer.

    The paper's [sys_smod_start_session] forcibly forks a fresh handle
    per client (§4, Figure 8 row 5): the fork, module-image installation
    (and AES decryption under the Encrypted protection) dominate session
    establishment.  smodd replaces that with a bounded pool of pre-forked
    reusable handles per module: a client's start_session attaches to a
    parked handle (re-running [force_share] against the new client — the
    safety-relevant part — while the fork and image work were paid once,
    off-path), and detach returns the handle to the pool after it scrubs
    its secret segment.

    Admission is a bounded FIFO queue with per-module fairness: when the
    pool is saturated, [Reject] fails start_session with EAGAIN while
    [Wait] parks the client until a handle frees up; freed capacity goes
    to the least-served module with queued waiters.  A saturated pool may
    also reclaim an idle handle parked under a different module — both at
    acquire time and when a handle parks while another module's client is
    starving in the queue, so no waiter is stranded behind idle capacity.
    A client killed while queued is uncounted (and any handle it was
    granted but never attached to returns to the pool).

    A policy-decision cache (see {!Policy_cache}) memoises cacheable
    per-call verdicts, replacing the per-call credential check and policy
    walk with one probe.

    Installing smodd changes no client-visible semantics: the stub API,
    handshake, per-call dispatch, and every policy outcome are identical
    — only the latency profile moves. *)

type overflow =
  | Reject  (** saturated pool fails [start_session] with EAGAIN *)
  | Wait  (** block the client in the admission queue (FIFO, fair) *)

type config = {
  max_handles_per_module : int;
  max_total_handles : int;
  max_queue_depth : int;  (** queued clients across all modules *)
  overflow : overflow;
  cache_enabled : bool;
  cache_ttl_us : float;  (** simulated; non-positive = no expiry *)
  cache_capacity : int;
}

val default_config : config
(** 4 handles/module, 16 total, queue depth 64, [Wait], cache on
    (1 s TTL, 1024 entries). *)

type t

val install : Secmodule.Smod.t -> ?config:config -> unit -> t
(** Register smodd on the subsystem: session broker, policy cache and
    module-removal hook.  At most one smodd per subsystem. *)

val uninstall : t -> unit
(** Deregister the hooks (the module-remove hook included), wake every
    queued client (they fail with ENOENT, as on module removal) and
    retire every pooled handle. *)

val config : t -> config

(** {1 Introspection (smodctl pool status, tests)} *)

type module_status = {
  ms_m_id : int;
  ms_module : string;
  ms_handles : int;  (** live handles (parked + busy) *)
  ms_parked : int;
  ms_busy : int;
  ms_waiters : int;  (** clients queued for this module *)
  ms_spawned : int;  (** handles ever forked for this module *)
  ms_retired : int;
  ms_tenants : int;  (** sessions served by the live handles *)
}

type status = {
  st_modules : module_status list;  (** sorted by m_id *)
  st_total_handles : int;
  st_total_waiters : int;
  st_cache_size : int option;  (** [None] when the cache is disabled *)
  st_cache_capacity : int option;
  st_cache_compiled : int option;  (** compiled programs held pool-side *)
  st_ring_batches : int;  (** process-wide [ring.*] counters: batched traps *)
  st_ring_submits : int;  (** calls submitted through dispatch rings *)
  st_ring_stale_drops : int;  (** submitted-but-unclaimed slots scrubbed at recycle *)
  st_spin_budget : int;
      (** the shared spin/park knob: serve-loop yields before blocking,
          poller empty sweeps before parking ({!Smod.set_spin_budget}) *)
}

val status : t -> status
val render_status : t -> string
(** Table form, one row per module plus totals — what
    [smodctl pool status] prints. *)
