(* A fixed-slot SPSC submission/completion ring in simulated shared
   memory — the io_uring-style fast path of PR 3.

   The ring lives in the client's data pages inside the force-share
   window, so both sides of a SecModule session address the same frames.
   One producer (the client stub) submits call slots; one consumer (the
   handle) claims and completes them; the kernel is the only writer of
   the per-slot admission verdict, stamped during [sys_smod_call_batch].

   Memory layout (32-bit little-endian words through Aspace):

     header  8 words:  magic  nslots  head  claimed  completed  reaped  needwake  -
     slot   16 words:  state seq m_id func verdict nargs csp cfp
                       arg0 arg1 arg2 arg3 status retval  -  -

   Sequence numbers are monotonically increasing; slot index is
   [seq mod nslots] (wrap handling).  A slot walks
   Free -> Submitted -> Claimed -> Completed -> Free, except that the
   kernel completes *denied* slots directly (Submitted -> Completed) so
   a rejected call never reaches the handle.

   Trust: everything here is client-mapped memory, so nothing the client
   writes is believed.  Admission state never round-trips through these
   words: at stamp time the kernel records (seq, moduleID, funcID,
   verdict) in its private per-registration shadow (Machine.ring_reg),
   and the handle claims from that shadow — [claim_stamped] takes the
   authoritative identity as arguments rather than re-reading it here.
   The verdict/state words below are written only so the *client* can
   observe progress; cursors the kernel or handle act on (stamped,
   claimed) live kernel-side.  Kernel and handle views are built from
   the geometry pinned at sys_smod_ring_setup ([of_registration]), not
   from the client-writable nslots header word. *)

module Aspace = Smod_vmem.Aspace
module Clock = Smod_sim.Clock
module Cost = Smod_sim.Cost_model

let magic = 0x52494E47 (* "RING" *)
let header_words = 8
let slot_words = 16
let max_args = 4
let header_bytes = header_words * 4
let slot_bytes = slot_words * 4
let size_bytes ~nslots = header_bytes + (nslots * slot_bytes)

(* Slot states. *)
let st_free = 0
let st_submitted = 1
let st_claimed = 2
let st_completed = 3

(* Admission verdicts (kernel-written). *)
let verdict_none = 0
let verdict_allow = 1
let verdict_deny = 2

type t = { aspace : Aspace.t; base : int; nslots : int }

type slot = {
  seq : int;
  m_id : int;
  func_id : int;
  nargs : int;
  client_sp : int;
  client_fp : int;
  args_base : int;
}

let clock t = Aspace.clock t.aspace
let base t = t.base
let nslots t = t.nslots
let hdr t i = Aspace.read_word t.aspace ~addr:(t.base + (4 * i))
let set_hdr t i v = Aspace.write_word t.aspace ~addr:(t.base + (4 * i)) v
let slot_addr t seq = t.base + header_bytes + ((seq mod t.nslots) * slot_bytes)
let slot_word t seq i = Aspace.read_word t.aspace ~addr:(slot_addr t seq + (4 * i))

let set_slot_word t seq i v =
  Aspace.write_word t.aspace ~addr:(slot_addr t seq + (4 * i)) v

(* Header word indices. *)
let h_head = 2
let h_claimed = 3
let h_completed = 4
let h_reaped = 5
let h_need_wakeup = 6

(* Slot word indices. *)
let s_state = 0
let s_seq = 1
let s_m_id = 2
let s_func = 3
let s_verdict = 4
let s_nargs = 5
let s_csp = 6
let s_cfp = 7
let s_arg0 = 8
let s_status = 12
let s_retval = 13

let head t = hdr t h_head
let claimed t = hdr t h_claimed
let completed t = hdr t h_completed
let reaped t = hdr t h_reaped

(* SQPOLL-style need-wakeup flag (kernel-written, client-read without a
   trap — the IORING_SQ_NEED_WAKEUP idiom).  Like every header word it
   lives in client-writable memory, so the kernel never *trusts* it: a
   client forging 0 merely stalls its own calls until the next honest
   doorbell; forging 1 makes itself trap unnecessarily.  Admission is
   unaffected either way. *)
let need_wakeup t = hdr t h_need_wakeup <> 0
let set_need_wakeup t v = set_hdr t h_need_wakeup (if v then 1 else 0)
let in_flight t = head t - reaped t
let space t = t.nslots - in_flight t

let zero t =
  for i = 0 to (size_bytes ~nslots:t.nslots / 4) - 1 do
    Aspace.write_word t.aspace ~addr:(t.base + (4 * i)) 0
  done;
  set_hdr t 0 magic;
  set_hdr t 1 t.nslots

let init aspace ~base ~nslots =
  if nslots <= 0 then invalid_arg "Ring.init: nslots must be positive";
  let t = { aspace; base; nslots } in
  zero t;
  t

let attach aspace ~base =
  match Aspace.read_word aspace ~addr:base with
  | m when m <> magic -> None
  | exception _ -> None
  | _ ->
      let nslots = Aspace.read_word aspace ~addr:(base + 4) in
      if nslots <= 0 || nslots > 65536 then None else Some { aspace; base; nslots }

let of_registration aspace ~base ~nslots =
  if nslots <= 0 then None
  else
    match Aspace.read_word aspace ~addr:base with
    | exception _ -> None
    | m when m <> magic -> None
    | _ ->
        (* The geometry comes from the kernel's registration; a header
           word that disagrees is client tampering, not a bigger ring. *)
        if Aspace.read_word aspace ~addr:(base + 4) <> nslots then None
        else Some { aspace; base; nslots }

let reset = zero

(* ------------------------------ client ----------------------------- *)

let try_submit t ~m_id ~func_id ~client_sp ~client_fp ~args =
  if Array.length args > max_args then
    invalid_arg "Ring.try_submit: too many inline args"
  else if space t <= 0 then None
  else begin
    let seq = head t in
    assert (slot_word t seq s_state = st_free);
    Clock.charge (clock t) Cost.Ring_submit;
    set_slot_word t seq s_seq seq;
    set_slot_word t seq s_m_id m_id;
    set_slot_word t seq s_func func_id;
    set_slot_word t seq s_verdict verdict_none;
    set_slot_word t seq s_nargs (Array.length args);
    set_slot_word t seq s_csp client_sp;
    set_slot_word t seq s_cfp client_fp;
    Array.iteri (fun i a -> set_slot_word t seq (s_arg0 + i) a) args;
    set_slot_word t seq s_status 0;
    set_slot_word t seq s_retval 0;
    set_slot_word t seq s_state st_submitted;
    set_hdr t h_head (seq + 1);
    Some seq
  end

let reap t =
  let r = reaped t in
  if r >= head t then None
  else if slot_word t r s_state <> st_completed then None
  else begin
    Clock.charge (clock t) Cost.Ring_reap;
    let status = slot_word t r s_status and retval = slot_word t r s_retval in
    set_slot_word t r s_state st_free;
    set_hdr t h_reaped (r + 1);
    Some (r, status, retval)
  end

(* ------------------------------ kernel ----------------------------- *)

let submitted_info t ~seq =
  if seq < 0 || seq >= head t then None
  else if slot_word t seq s_state <> st_submitted then None
  else Some (slot_word t seq s_m_id, slot_word t seq s_func)

let stamp t ~seq ~allow =
  Clock.charge (clock t) Cost.Ring_stamp;
  set_slot_word t seq s_verdict (if allow then verdict_allow else verdict_deny)

let kernel_complete t ~seq ~status =
  (* Kernel-side completion of a slot that must not reach the handle
     (denied, or malformed beyond dispatch): status is delivered to the
     client's reap; the handle's claim cursor skips over it. *)
  set_slot_word t seq s_verdict verdict_deny;
  set_slot_word t seq s_status status;
  set_slot_word t seq s_retval 0;
  set_slot_word t seq s_state st_completed;
  set_hdr t h_completed (completed t + 1)

(* ------------------------------ handle ----------------------------- *)

let claim_stamped t ~seq ~m_id ~func_id =
  (* The caller (the handle, via Machine.ring_claim_next) holds the
     kernel-private admission record for [seq]: identity and verdict are
     passed in, not re-read from the slot, so post-stamp rewrites of the
     client-writable identity/verdict/state words change nothing.  Only
     the call's *data* — arg count, frame pointers, inline args — comes
     from shared memory, exactly as the legacy msgq path reads argument
     words from the shared client stack at call time. *)
  Clock.charge (clock t) Cost.Ring_claim;
  set_slot_word t seq s_state st_claimed;
  (* Shared claim word is a progress mirror for the client and pp only;
     nothing reads it for admission. *)
  if seq + 1 > claimed t then set_hdr t h_claimed (seq + 1);
  {
    seq;
    m_id;
    func_id;
    nargs = slot_word t seq s_nargs;
    client_sp = slot_word t seq s_csp;
    client_fp = slot_word t seq s_cfp;
    args_base = slot_addr t seq + (s_arg0 * 4);
  }

let complete t ~seq ~status ~retval =
  Clock.charge (clock t) Cost.Ring_complete;
  set_slot_word t seq s_status status;
  set_slot_word t seq s_retval (retval land 0xFFFFFFFF);
  set_slot_word t seq s_state st_completed;
  set_hdr t h_completed (completed t + 1)

(* --------------------------- introspection ------------------------- *)

let slot_state t i =
  Aspace.read_word t.aspace ~addr:(t.base + header_bytes + (i * slot_bytes))

let occupancy t =
  let n = ref 0 in
  for i = 0 to t.nslots - 1 do
    if slot_state t i <> st_free then incr n
  done;
  !n

let stale_submitted t =
  let n = ref 0 in
  for i = 0 to t.nslots - 1 do
    let st = slot_state t i in
    if st = st_submitted || st = st_claimed then incr n
  done;
  !n

let pp ppf t =
  Format.fprintf ppf
    "ring@@0x%08x slots=%d head=%d claimed=%d completed=%d reaped=%d occ=%d"
    t.base t.nslots (head t) (claimed t) (completed t) (reaped t) (occupancy t)
