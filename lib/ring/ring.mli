(** Fixed-slot SPSC submission/completion ring in simulated shared memory.

    One producer (the client stub) fills slots with (module, func, args)
    and bumps [head]; the kernel stamps admission verdicts during
    [sys_smod_call_batch] (it is the only legitimate writer of the
    verdict word, and it rewrites it unconditionally — client forgeries
    are overwritten); one consumer (the handle) claims stamped slots up
    to the kernel's private cursor and completes them in place.  Slot
    lifecycle: Free -> Submitted -> Claimed -> Completed -> Free, with a
    kernel shortcut Submitted -> Completed for denied calls.

    The ring itself holds no authority: it is plain client-mapped memory
    and every security-relevant decision is re-derived from kernel state
    by the caller. *)

type t
(** A view of one ring: an address space + base address + geometry.
    Client, kernel, and handle each hold their own view over the same
    (shared) frames. *)

type slot = {
  seq : int;  (** monotonic sequence number; slot index is [seq mod nslots] *)
  m_id : int;
  func_id : int;
  nargs : int;
  client_sp : int;
  client_fp : int;
  args_base : int;  (** address of argument word 0 inside the slot *)
}
(** What [claim] hands the handle — mirrors [Wire.request] plus identity. *)

val max_args : int
(** Arguments a slot can carry inline (4); larger calls use the msgq path. *)

val size_bytes : nslots:int -> int
(** Bytes of shared memory a ring with [nslots] slots occupies. *)

val init : Smod_vmem.Aspace.t -> base:int -> nslots:int -> t
(** Zero the region and write the header.  The caller owns placement
    (inside the session's share window) and validation. *)

val attach : Smod_vmem.Aspace.t -> base:int -> t option
(** Re-derive a view from a mapped header; [None] if the magic or
    geometry is implausible. *)

val reset : t -> unit
(** Re-zero everything and re-arm the header — the scrub path. *)

val base : t -> int
val nslots : t -> int

(** {2 Cursors (header words, shared)} *)

val head : t -> int
(** Total slots ever submitted (client-written). *)

val claimed : t -> int
(** Handle's claim cursor: slots below it were claimed or skipped. *)

val completed : t -> int
(** Total slots ever completed (handle- or kernel-written). *)

val reaped : t -> int
(** Client's reap cursor. *)

val in_flight : t -> int
(** [head - reaped]: submitted but not yet reaped. *)

val space : t -> int
(** Free slots available to submit into. *)

(** {2 Client side} *)

val try_submit :
  t ->
  m_id:int ->
  func_id:int ->
  client_sp:int ->
  client_fp:int ->
  args:int array ->
  int option
(** Fill the next slot; [None] when the ring is full.  Raises
    [Invalid_argument] on more than [max_args] arguments. *)

val reap : t -> (int * int * int) option
(** In-order reap of the next Completed slot: [(seq, status, retval)],
    freeing the slot.  [None] if the next slot is still in flight. *)

(** {2 Kernel side} *)

val submitted_info : t -> seq:int -> (int * int) option
(** [(m_id, func_id)] of a slot still in Submitted state, else [None]. *)

val stamp : t -> seq:int -> allow:bool -> unit
(** Write the admission verdict (kernel only). *)

val kernel_complete : t -> seq:int -> status:int -> unit
(** Complete a slot kernel-side (denied or malformed) so it never
    reaches the handle; the client reaps the status as usual. *)

(** {2 Handle side} *)

val claim : t -> limit:int -> slot option
(** Claim the next allow-stamped Submitted slot with [seq < limit]
    (the kernel's stamped cursor), skipping kernel-completed ones.
    [None] when caught up. *)

val complete : t -> seq:int -> status:int -> retval:int -> unit

(** {2 Introspection} *)

val occupancy : t -> int
(** Slots not currently Free. *)

val stale_submitted : t -> int
(** Slots stuck in Submitted/Claimed — what a client that died
    mid-batch leaves behind; the scrub path must drain these. *)

val pp : Format.formatter -> t -> unit
