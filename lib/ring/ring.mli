(** Fixed-slot SPSC submission/completion ring in simulated shared memory.

    One producer (the client stub) fills slots with (module, func, args)
    and bumps [head]; the kernel evaluates admission during
    [sys_smod_call_batch] and records each decision — (seq, moduleID,
    funcID, verdict) — in kernel-private shadow state (Machine); one
    consumer (the handle) claims from that shadow via
    [Machine.ring_claim_next] + {!claim_stamped} and completes slots in
    place.  Slot lifecycle: Free -> Submitted -> Claimed -> Completed ->
    Free, with a kernel shortcut Submitted -> Completed for denied
    calls.

    The ring itself holds no authority: it is plain client-mapped
    memory, and nothing admission-relevant is ever read back from it
    after the stamp.  The verdict/state words exist so the client can
    observe progress; the cursors that gate execution (stamped, claimed)
    are kernel-private.  Kernel and handle construct their views from
    the geometry pinned at registration ({!of_registration}), never from
    the client-writable header. *)

type t
(** A view of one ring: an address space + base address + geometry.
    Client, kernel, and handle each hold their own view over the same
    (shared) frames. *)

type slot = {
  seq : int;  (** monotonic sequence number; slot index is [seq mod nslots] *)
  m_id : int;
  func_id : int;
  nargs : int;
  client_sp : int;
  client_fp : int;
  args_base : int;  (** address of argument word 0 inside the slot *)
}
(** What [claim] hands the handle — mirrors [Wire.request] plus identity. *)

val max_args : int
(** Arguments a slot can carry inline (4); larger calls use the msgq path. *)

val size_bytes : nslots:int -> int
(** Bytes of shared memory a ring with [nslots] slots occupies. *)

val init : Smod_vmem.Aspace.t -> base:int -> nslots:int -> t
(** Zero the region and write the header.  The caller owns placement
    (inside the session's share window) and validation. *)

val attach : Smod_vmem.Aspace.t -> base:int -> t option
(** Re-derive a view from a mapped header; [None] if the magic or
    geometry is implausible.  Client-side only — the header is
    client-writable, so kernel and handle must use {!of_registration}. *)

val of_registration : Smod_vmem.Aspace.t -> base:int -> nslots:int -> t option
(** Build the kernel/handle view from the geometry pinned at
    [sys_smod_ring_setup].  [None] if the magic is gone or the header's
    nslots word disagrees with the registered [nslots] (client
    tampering) — callers must treat that as EINVAL, never fall back to
    the header word. *)

val reset : t -> unit
(** Re-zero everything and re-arm the header — the scrub path. *)

val base : t -> int
val nslots : t -> int

(** {2 Cursors (header words, shared)} *)

val head : t -> int
(** Total slots ever submitted (client-written). *)

val claimed : t -> int
(** Progress mirror of the handle's claim cursor — written for client
    visibility and [pp] only; the authoritative cursor is kernel-private
    (Machine). *)

val completed : t -> int
(** Total slots ever completed (handle- or kernel-written). *)

val reaped : t -> int
(** Client's reap cursor. *)

val need_wakeup : t -> bool
(** SQPOLL-style flag (header word 6): set by the kernel when the poller
    parks, cleared when it wakes.  The client reads it trap-free to
    decide whether a doorbell syscall is needed.  Advisory only — it
    lives in client-writable memory, so a forged value can only hurt the
    forger (stalled calls or a wasted trap), never admission. *)

val set_need_wakeup : t -> bool -> unit
(** Kernel-side write of the need-wakeup flag. *)

val in_flight : t -> int
(** [head - reaped]: submitted but not yet reaped. *)

val space : t -> int
(** Free slots available to submit into. *)

(** {2 Client side} *)

val try_submit :
  t ->
  m_id:int ->
  func_id:int ->
  client_sp:int ->
  client_fp:int ->
  args:int array ->
  int option
(** Fill the next slot; [None] when the ring is full.  Raises
    [Invalid_argument] on more than [max_args] arguments. *)

val reap : t -> (int * int * int) option
(** In-order reap of the next Completed slot: [(seq, status, retval)],
    freeing the slot.  [None] if the next slot is still in flight. *)

(** {2 Kernel side} *)

val submitted_info : t -> seq:int -> (int * int) option
(** [(m_id, func_id)] of a slot still in Submitted state, else [None].
    This is the one read of client identity words — made once, at stamp
    time, under the trap; the kernel snapshots the result into its
    shadow and never reads them again. *)

val stamp : t -> seq:int -> allow:bool -> unit
(** Write the admission verdict (kernel only).  Client-visible progress
    word; the authoritative verdict is the kernel's shadow record. *)

val kernel_complete : t -> seq:int -> status:int -> unit
(** Complete a slot kernel-side (denied or malformed) so it never
    reaches the handle; the client reaps the status as usual. *)

(** {2 Handle side} *)

val claim_stamped : t -> seq:int -> m_id:int -> func_id:int -> slot
(** Materialize the slot the kernel-private shadow just handed the
    handle ([Machine.ring_claim_next]): identity and verdict come from
    the arguments, not from the client-writable slot words — only the
    call's data (nargs, frame pointers, inline args) is read from shared
    memory, as the legacy msgq path does from the shared stack. *)

val complete : t -> seq:int -> status:int -> retval:int -> unit

(** {2 Introspection} *)

val occupancy : t -> int
(** Slots not currently Free. *)

val stale_submitted : t -> int
(** Slots stuck in Submitted/Claimed — what a client that died
    mid-batch leaves behind; the scrub path must drain these. *)

val pp : Format.formatter -> t -> unit
