module Machine = Smod_kern.Machine
module Proc = Smod_kern.Proc
module Errno = Smod_kern.Errno
module Sysno = Smod_kern.Sysno
module Clock = Smod_sim.Clock

type action = Permit | Deny of Errno.t

type cmp = Lt | Le | Gt | Ge | Eq | Ne

type condition = { arg_index : int; op : cmp; value : int }

type rule = { sysname : string; cond : condition option; action : action }

type policy = { policy_name : string; rules : rule list; default : action }

exception Policy_error of { line : int; message : string }

let fail line fmt = Format.kasprintf (fun message -> raise (Policy_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Policy parsing                                                      *)
(* ------------------------------------------------------------------ *)

let errno_of_string line = function
  | "EPERM" -> Errno.EPERM
  | "EACCES" -> Errno.EACCES
  | "ENOMEM" -> Errno.ENOMEM
  | "EINVAL" -> Errno.EINVAL
  | "ENOSYS" -> Errno.ENOSYS
  | "ENOENT" -> Errno.ENOENT
  | other -> fail line "unknown errno %S" other

let parse_action line words =
  match words with
  | [ "permit" ] -> Permit
  | [ "deny" ] -> Deny Errno.EPERM
  | [ "deny"; e ] -> Deny (errno_of_string line e)
  | _ -> fail line "expected 'permit' or 'deny [ERRNO]'"

let parse_cmp line = function
  | "<" -> Lt
  | "<=" -> Le
  | ">" -> Gt
  | ">=" -> Ge
  | "==" -> Eq
  | "!=" -> Ne
  | other -> fail line "unknown comparison %S" other

let parse_arg_ref line word =
  let n = String.length word in
  if n > 3 && String.sub word 0 3 = "arg" then begin
    match int_of_string_opt (String.sub word 3 (n - 3)) with
    | Some k when k >= 0 && k < 8 -> k
    | _ -> fail line "bad argument reference %S" word
  end
  else fail line "expected argN, found %S" word

let words_of s =
  String.split_on_char ' ' s |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse_policy source =
  let name = ref None in
  let rules = ref [] in
  let default = ref (Deny Errno.EPERM) in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let text =
        match String.index_opt raw '#' with Some j -> String.sub raw 0 j | None -> raw
      in
      let text = String.trim text in
      if text <> "" then begin
        match String.index_opt text ':' with
        | None -> fail line "expected 'field: value'"
        | Some j ->
            let field = String.trim (String.sub text 0 j) in
            let value = String.trim (String.sub text (j + 1) (String.length text - j - 1)) in
            if field = "policy" then name := Some value
            else if field = "default" then default := parse_action line (words_of value)
            else begin
              let sysname =
                if String.length field > 7 && String.sub field 0 7 = "native-" then
                  String.sub field 7 (String.length field - 7)
                else fail line "rules must name native-<syscall>, found %S" field
              in
              let words = words_of value in
              let cond, action_words =
                match words with
                | argref :: op :: v :: "then" :: rest ->
                    let arg_index = parse_arg_ref line argref in
                    let op = parse_cmp line op in
                    let value =
                      match int_of_string_opt v with
                      | Some n -> n
                      | None -> fail line "bad number %S" v
                    in
                    (Some { arg_index; op; value }, rest)
                | words -> (None, words)
              in
              rules := { sysname; cond; action = parse_action line action_words } :: !rules
            end
      end)
    (String.split_on_char '\n' source);
  match !name with
  | None -> fail 0 "missing 'policy:' header"
  | Some policy_name -> { policy_name; rules = List.rev !rules; default = !default }

(* ------------------------------------------------------------------ *)
(* Decision                                                            *)
(* ------------------------------------------------------------------ *)

let cond_holds cond args =
  let v = if cond.arg_index < Array.length args then args.(cond.arg_index) else 0 in
  match cond.op with
  | Lt -> v < cond.value
  | Le -> v <= cond.value
  | Gt -> v > cond.value
  | Ge -> v >= cond.value
  | Eq -> v = cond.value
  | Ne -> v <> cond.value

let decide policy ~sysname ~args =
  let rec scan n = function
    | [] -> (policy.default, n)
    | r :: rest ->
        if r.sysname = sysname && (match r.cond with None -> true | Some c -> cond_holds c args)
        then (r.action, n + 1)
        else scan (n + 1) rest
  in
  scan 0 policy.rules

(* ------------------------------------------------------------------ *)
(* Enforcement engine                                                  *)
(* ------------------------------------------------------------------ *)

type event = {
  ev_pid : int;
  ev_sysno : int;
  ev_sysname : string;
  ev_args : int array;
  ev_allowed : bool;
}

type t = {
  machine : Machine.t;
  policies : (int, policy) Hashtbl.t;
  mutable events : event list;  (* newest first *)
  mutable n_events : int;
}

let filter t (p : Proc.t) nr args =
  match Hashtbl.find_opt t.policies p.Proc.pid with
  | None -> `Allow
  | Some policy ->
      let sysname = Sysno.name nr in
      let action, scanned = decide policy ~sysname ~args in
      (* Rule evaluation costs the kernel time on every trap. *)
      Clock.charge_cycles (Machine.clock t.machine) (30.0 +. (12.0 *. float_of_int scanned));
      let allowed = action = Permit in
      t.events <-
        { ev_pid = p.Proc.pid; ev_sysno = nr; ev_sysname = sysname; ev_args = Array.copy args; ev_allowed = allowed }
        :: t.events;
      t.n_events <- t.n_events + 1;
      (match action with Permit -> `Allow | Deny e -> `Deny e)

let install machine =
  let t = { machine; policies = Hashtbl.create 8; events = []; n_events = 0 } in
  Machine.set_syscall_filter machine (Some (fun p nr args -> filter t p nr args));
  t

let attach t ~pid policy = Hashtbl.replace t.policies pid policy
let detach t ~pid = Hashtbl.remove t.policies pid
let attached t ~pid = Hashtbl.mem t.policies pid
let attached_policy t ~pid = Hashtbl.find_opt t.policies pid

let attachments t =
  Hashtbl.fold (fun pid policy acc -> (pid, policy) :: acc) t.policies []
  |> List.sort compare
let audit t = List.rev t.events
let audit_count t = t.n_events

let clear_audit t =
  t.events <- [];
  t.n_events <- 0

let uninstall t = Machine.set_syscall_filter t.machine None
