(** A Systrace-style syscall policy engine (Provos, USENIX Security 2003).

    The paper's Background section (§2) positions SecModule against
    Systrace: syscall-level policies are fine-grained but operate at the
    wrong altitude — "the behavior of software captured by systrace is
    (counter-intuitively) too verbose", one library-level operation
    explodes into many syscall events, and "a misconfigured system call
    policy" can interrupt a multi-syscall library operation midway,
    "resulting in the library code being in an inconsistent state".

    This substrate exists so those claims can be demonstrated and measured
    (see [examples/systrace_compare.ml]): it interposes on the simulated
    kernel's trap path, evaluates per-process policies, and keeps the
    audit log whose sheer volume is the §2 argument.

    Policy syntax (one rule per line, first match wins):
    {v
      policy: some-name
      native-getpid: permit
      native-obreak: arg0 < 73728 then permit
      native-obreak: deny ENOMEM
      default: deny
    v} *)

type action = Permit | Deny of Smod_kern.Errno.t

type cmp = Lt | Le | Gt | Ge | Eq | Ne

type condition = { arg_index : int; op : cmp; value : int }

type rule = { sysname : string; cond : condition option; action : action }

type policy = { policy_name : string; rules : rule list; default : action }

exception Policy_error of { line : int; message : string }

val parse_policy : string -> policy

val decide : policy -> sysname:string -> args:int array -> action * int
(** (decision, rules scanned) — exposed for tests and cost accounting. *)

type event = {
  ev_pid : int;
  ev_sysno : int;
  ev_sysname : string;
  ev_args : int array;
  ev_allowed : bool;
}

type t

val install : Smod_kern.Machine.t -> t
(** Claims the machine's syscall-filter hook.  Unattached processes are
    unaffected. *)

val attach : t -> pid:int -> policy -> unit
val detach : t -> pid:int -> unit
val attached : t -> pid:int -> bool

val attached_policy : t -> pid:int -> policy option
(** The policy currently enforced on [pid], if any — read-only
    introspection for [Secmodule.Audit]'s filter-coverage component. *)

val attachments : t -> (int * policy) list
(** Every (pid, policy) attachment, sorted by pid. *)

val audit : t -> event list
(** Oldest first; every trap by an attached process, allowed or not. *)

val audit_count : t -> int
val clear_audit : t -> unit
val uninstall : t -> unit
(** Release the machine hook. *)
