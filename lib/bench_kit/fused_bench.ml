(* E24: fused batch policy evaluation — one compiled pass per batch —
   against per-slot compiled execution, across batch size, assertion
   count and all three admission transports (msgq scalar calls, ring
   batches, the E22 kernel poller).

   The policy ladder mirrors E19's volatile shape but with richer
   batch-invariant guards (module identity, an origin predicate, two
   static deployment attributes) ahead of the varying term, which is
   exactly the shape fusion exploits: the whole non-matching ladder and
   every invariant conjunct of the matching rung land in the
   batch-invariant prefix, evaluated once per batch into a node
   snapshot; the per-slot residue is the calls_so_far comparison plus
   the root combine.  Per-slot compiled execution walks all of it every
   slot.  The volatile guard keeps smodd's decision cache out of the
   picture on every row, like E19.

   Three extra row families ride along:

   - speedup ratios (perslot mean / fused mean) per cell, so the >= 3x
     headline at ring b64 kn-16 is a first-class gated row rather than
     arithmetic a reader does by hand;
   - the compile-memory curve: distinct-segment storage with and without
     the structural-sharing arena across 1k / 10k-assertion registries
     (shared-suffix policies, the registry steady state);
   - the origin-predicate ladder: 0..3 origin conjuncts ahead of the
     volatile term.  They share the matching assertion's segment with
     calls_so_far, so they stay in the residue — but each costs one
     fused F_origin_jf superop per slot against two plain opcodes on the
     per-slot engine (the halved slope is the measured claim; whole-
     assertion hoisting is the main ladder's job).  Plus the
     deny-by-origin path: a transport predicate that refuses ring
     batches outright.

   Each (cell, trial) task builds a private world from coordinate-derived
   seeds, so the document is bit-identical for any job count. *)

module Machine = Smod_kern.Machine
module Clock = Smod_sim.Clock
module Stats = Smod_util.Stats
module Parse = Smod_keynote.Parse
module Compile = Smod_keynote.Compile
module Fuse = Smod_keynote.Fuse
open Secmodule

type transport = Msgq | Ring | Poller

let transport_name = function Msgq -> "msgq" | Ring -> "ring" | Poller -> "poller"

type config = {
  cells : (int * int) list;  (* (batch, assertions) *)
  rounds : int;  (* measured batches per trial *)
  trials : int;
  mem_sizes : int list;  (* registry sizes for the compile-memory curve *)
  origin_terms : int list;  (* origin-predicate ladder rungs *)
}

let default_config =
  {
    cells = [ (1, 16); (4, 16); (16, 16); (64, 16); (64, 1); (64, 4); (64, 64) ];
    rounds = 60;
    trials = 3;
    mem_sizes = [ 1_000; 10_000 ];
    origin_terms = [ 0; 1; 2; 3 ];
  }

(* ------------------------------------------------------------------ *)
(* Policies                                                            *)
(* ------------------------------------------------------------------ *)

(* [n]-assertion ladder: one matching rung reading the volatile
   calls_so_far behind four invariant conjuncts, and [n - 1] non-matching
   rungs that differ only in the clause literal.  origin_ring <= 3 is a
   tautology over the 0..3 ring lattice — its point is to be an origin
   predicate the compiler must resolve per batch, not to filter. *)
let ladder_policy n =
  let invariant_guard = "module == \"seclibc\" && origin_ring <= 3 && tier == \"gold\" && region == \"us\"" in
  let matching =
    Parse.assertion_of_string
      (Printf.sprintf
         "keynote-version: 2\n\
          authorizer: \"POLICY\"\n\
          licensees: \"client\"\n\
          conditions: %s && calls_so_far < 1000000000 -> \"allow\";\n"
         invariant_guard)
  in
  let non_matching =
    List.init (n - 1) (fun i ->
        Parse.assertion_of_string
          (Printf.sprintf
             "keynote-version: 2\n\
              authorizer: \"POLICY\"\n\
              licensees: \"client\"\n\
              conditions: %s && clause == %d -> \"allow\";\n"
             invariant_guard i))
  in
  Policy.Keynote
    {
      policy = matching :: non_matching;
      levels = [| "deny"; "allow" |];
      min_level = "allow";
      attrs = [ ("tier", "gold"); ("region", "us") ];
    }

(* Origin ladder: a single matching assertion whose guard carries [k]
   origin conjuncts (all true for a plain ring-3 client over any call
   transport) ahead of the volatile term. *)
let origin_ladder_policy k =
  let terms =
    [
      "origin_ring <= 3";
      "origin_transport != \"poller\"";
      "origin_module == \"user\"";
    ]
  in
  let rec take n = function
    | x :: xs when n > 0 -> x :: take (n - 1) xs
    | _ -> []
  in
  let guard = String.concat " && " ("module == \"seclibc\"" :: take k terms) in
  Policy.Keynote
    {
      policy =
        [
          Parse.assertion_of_string
            (Printf.sprintf
               "keynote-version: 2\n\
                authorizer: \"POLICY\"\n\
                licensees: \"client\"\n\
                conditions: %s && calls_so_far < 1000000000 -> \"allow\";\n"
               guard);
        ];
      levels = [| "deny"; "allow" |];
      min_level = "allow";
      attrs = [];
    }

(* Deny-by-origin: establishment is admitted explicitly, ring batches are
   refused because only the msgq transport satisfies the predicate. *)
let deny_by_transport_policy =
  Policy.Keynote
    {
      policy =
        [
          Parse.assertion_of_string
            "keynote-version: 2\n\
             authorizer: \"POLICY\"\n\
             licensees: \"client\"\n\
             conditions: phase == \"session\" -> \"allow\"; origin_transport == \
             \"msgq\" -> \"allow\";\n";
        ];
      levels = [| "deny"; "allow" |];
      min_level = "allow";
      attrs = [];
    }

(* ------------------------------------------------------------------ *)
(* One (cell, trial) measurement                                       *)
(* ------------------------------------------------------------------ *)

let cell_trial ~policy ~transport ~fuse ~batch ~rounds ~seed =
  let world = World.create ~seed:(Int64.of_int seed) ~policy ~with_rpc:false () in
  let smod = world.World.smod in
  Smod.set_policy_compile smod true;
  Smod.set_policy_fuse smod fuse;
  (match transport with
  | Poller ->
      Smod.set_kernel_poller smod true;
      Smod.set_session_mux smod true
  | Msgq | Ring -> ());
  let clock = Machine.clock world.World.machine in
  let mean = ref Float.nan and p99 = ref Float.nan in
  World.spawn_seclibc_client world ~name:"e24-client" (fun _p conn ->
      (match transport with
      | Msgq -> ()
      | Ring | Poller -> ignore (Stub.arm_ring ~nslots:(max batch 16) conn));
      let argss = List.init batch (fun i -> [| i |]) in
      let do_batch () =
        match transport with
        | Msgq -> List.iter (fun args -> ignore (Stub.call conn ~func:"test_incr" args)) argss
        | Ring | Poller -> ignore (Stub.call_batch conn ~func:"test_incr" argss)
      in
      (* Warm: symbol lookup, ring arming, the one-off compile + plan. *)
      do_batch ();
      let samples = Array.make rounds 0.0 in
      for r = 0 to rounds - 1 do
        let t0 = Clock.now_cycles clock in
        do_batch ();
        samples.(r) <- Clock.elapsed_us clock ~since:t0 /. float_of_int batch
      done;
      mean := Stats.mean samples;
      p99 := Stats.percentile samples 99.0);
  World.run world;
  (!mean, !p99)

(* The deny path returns per-slot EACCES results rather than values; the
   cost of refusing a batch is the row. *)
let deny_trial ~fuse ~batch ~rounds ~seed =
  let world =
    World.create ~seed:(Int64.of_int seed) ~policy:deny_by_transport_policy
      ~with_rpc:false ()
  in
  let smod = world.World.smod in
  Smod.set_policy_compile smod true;
  Smod.set_policy_fuse smod fuse;
  let clock = Machine.clock world.World.machine in
  let mean = ref Float.nan in
  World.spawn_seclibc_client world ~name:"e24-deny" (fun _p conn ->
      ignore (Stub.arm_ring ~nslots:(max batch 16) conn);
      let argss = List.init batch (fun i -> [| i |]) in
      let do_batch () = ignore (Stub.call_batch conn ~func:"test_incr" argss) in
      do_batch ();
      let samples = Array.make rounds 0.0 in
      for r = 0 to rounds - 1 do
        let t0 = Clock.now_cycles clock in
        do_batch ();
        samples.(r) <- Clock.elapsed_us clock ~since:t0 /. float_of_int batch
      done;
      mean := Stats.mean samples);
  World.run world;
  !mean

(* ------------------------------------------------------------------ *)
(* Compile-memory curve                                                *)
(* ------------------------------------------------------------------ *)

(* The registry steady state: many policies sharing a common assertion
   suffix (vendor boilerplate) behind one unique clause each.  Naive
   storage replicates every plan's segments; the arena interns them.
   Pure computation — no world, no cost-model charges — and reset-first,
   so the numbers are independent of whatever else ran on this domain. *)
let memory_rows sizes =
  let lv = [| "deny"; "allow" |] in
  let shared =
    List.init 5 (fun i ->
        Parse.assertion_of_string
          (Printf.sprintf
             "keynote-version: 2\n\
              authorizer: \"POLICY\"\n\
              licensees: \"client\"\n\
              conditions: module == \"seclibc\" && tier == \"t%d\" -> \"allow\";\n"
             i))
  in
  List.concat_map
    (fun size ->
      Fuse.arena_reset ();
      let naive_bytes = ref 0 in
      for i = 0 to size - 1 do
        let unique =
          Parse.assertion_of_string
            (Printf.sprintf
               "keynote-version: 2\n\
                authorizer: \"POLICY\"\n\
                licensees: \"client\"\n\
                conditions: clause == %d -> \"allow\";\n"
               i)
        in
        match
          Compile.compile ~policy:(unique :: shared) ~credentials:[]
            ~requesters:[ "client" ] ~levels:lv ()
        with
        | Error _ -> ()
        | Ok prog ->
            let plan = Fuse.plan prog ~varying:Policy.batch_varying_attrs in
            naive_bytes := !naive_bytes + (32 * (Fuse.stats plan).Fuse.total_fops)
      done;
      let a = Fuse.arena_stats () in
      let arena_bytes = !naive_bytes - a.Fuse.a_bytes_saved in
      let kb b = float_of_int b /. 1024.0 in
      let row label v = Ablations.{ label; mean_us = v; stdev_us = 0.0 } in
      [
        row (Printf.sprintf "compile mem naive %dk (KB)" (size / 1000)) (kb !naive_bytes);
        row (Printf.sprintf "compile mem arena %dk (KB)" (size / 1000)) (kb arena_bytes);
        row
          (Printf.sprintf "compile mem sharing %dk (ratio)" (size / 1000))
          (float_of_int !naive_bytes /. float_of_int (max 1 arena_bytes));
      ])
    sizes

(* ------------------------------------------------------------------ *)
(* The experiment                                                      *)
(* ------------------------------------------------------------------ *)

let engines = [ ("perslot", false); ("fused", true) ]

let run ?(runner = Runner.sequential) ?(config = default_config) () =
  let main_configs =
    List.concat_map
      (fun (batch, kn) ->
        List.concat_map
          (fun transport ->
            List.map (fun (ename, fuse) -> `Main (batch, kn, transport, ename, fuse)) engines)
          [ Msgq; Ring; Poller ])
      config.cells
  in
  let origin_configs =
    List.concat_map
      (fun k -> List.map (fun (ename, fuse) -> `Origin (k, ename, fuse)) engines)
      config.origin_terms
    @ [ `Deny ]
  in
  let measure cfg ~trial =
    match cfg with
    | `Main (batch, kn, transport, _, fuse) ->
        let seed =
          24_000 + (1009 * trial) + (17 * batch) + (3 * kn)
          + (match transport with Msgq -> 0 | Ring -> 1 | Poller -> 2)
          + if fuse then 7 else 0
        in
        cell_trial ~policy:(ladder_policy kn) ~transport ~fuse ~batch
          ~rounds:config.rounds ~seed
    | `Origin (k, _, fuse) ->
        let seed = 24_700 + (1009 * trial) + (11 * k) + if fuse then 7 else 0 in
        cell_trial ~policy:(origin_ladder_policy k) ~transport:Ring ~fuse ~batch:16
          ~rounds:config.rounds ~seed
    | `Deny ->
        let seed = 24_900 + (1009 * trial) in
        (deny_trial ~fuse:true ~batch:16 ~rounds:config.rounds ~seed, Float.nan)
  in
  let results =
    Ablations.map_trials runner ~trials:config.trials (main_configs @ origin_configs)
      measure
  in
  let mean_of pairs = Stats.mean (Array.map fst pairs) in
  let label_of = function
    | `Main (batch, kn, transport, ename, _) ->
        Printf.sprintf "%s b%d kn-%d %s" (transport_name transport) batch kn ename
    | `Origin (k, ename, _) -> Printf.sprintf "origin-%d ring b16 %s" k ename
    | `Deny -> "origin deny ring b16 fused"
  in
  let measured =
    List.concat_map
      (fun (cfg, pairs) ->
        let label = label_of cfg in
        match cfg with
        | `Deny -> [ Ablations.entry_of_means (label ^ " (mean)") (Array.map fst pairs) ]
        | `Main _ | `Origin _ ->
            [
              Ablations.entry_of_means (label ^ " (mean)") (Array.map fst pairs);
              Ablations.entry_of_means (label ^ " (p99)") (Array.map snd pairs);
            ])
      results
  in
  (* Speedup ratios: perslot mean / fused mean per (transport, batch, kn)
     cell — the gateable headline rows. *)
  let ratios =
    List.concat_map
      (fun (batch, kn) ->
        List.map
          (fun transport ->
            let find ename =
              List.assoc (`Main (batch, kn, transport, ename, List.assoc ename engines))
                results
            in
            let perslot = mean_of (find "perslot") and fused = mean_of (find "fused") in
            Ablations.
              {
                label =
                  Printf.sprintf "%s b%d kn-%d speedup (ratio)"
                    (transport_name transport) batch kn;
                mean_us = perslot /. fused;
                stdev_us = 0.0;
              })
          [ Msgq; Ring; Poller ])
      config.cells
  in
  measured @ ratios @ memory_rows config.mem_sizes

let task_count config =
  let mains = 6 * List.length config.cells in
  let origins = (2 * List.length config.origin_terms) + 1 in
  (mains + origins) * config.trials

let dispatch_count config =
  let per_round = List.fold_left (fun acc (b, _) -> acc + b) 0 config.cells * 6 in
  let origin_per_round = 16 * ((2 * List.length config.origin_terms) + 1) in
  (per_round + origin_per_round) * (config.rounds + 1) * config.trials
