(** E22 — the zero-trap data path: SQPOLL-style kernel poller plus
    effects-based handle multiplexing, against the trap-per-batch ring
    baseline, as session count scales.

    Two rows per (mode, S) cell: simulated microseconds per call and
    machine-wide traps per call, both measured from the instant the last
    session armed its ring (setup traps excluded, like E1's warm-up).
    The trap mode pins the 1/batch floor the PR-3 path pays forever; the
    poller mode shows it collapsing toward zero while one mux domain
    carries every session.  Each (mode, S, trial) cell is an independent
    deterministic world, so a {!Runner} can spread cells over domains. *)

type config = {
  trap_sessions : int list;  (** default 1 / 8 / 64 *)
  poller_sessions : int list;  (** default 1 / 8 / 64 / 1000 *)
  batches : int;  (** ring batches per session *)
  batch : int;  (** calls per batch (= ring slots) *)
  trials : int;
}

val default_config : config

val run : ?runner:Runner.t -> ?config:config -> unit -> Ablations.entry list
(** Row order: per cell (trap sessions first, then poller sessions) —
    us/call, then traps/call. *)
