(** E20 — sharded smodd scale-out: a fixed tenant population partitioned
    by hash-based session placement ({!Smod_pool.Shard}) over K
    independent simulated kernels, each running its own smodd.

    Two rows per (transport, K): the aggregate throughput (sum of
    per-shard simulated rates, kcalls/s — each shard's kernel is its own
    timeline, like K machines racked side by side) and the p99 of every
    client-observed per-call latency pooled across shards.  Each
    (K, transport, trial, shard) cell is an independent task, so a
    {!Runner} can drive every shard on its own domain; results are
    identical for any job count. *)

type config = {
  shard_counts : int list;  (** default 1 / 2 / 4 / 8 *)
  clients : int;  (** total tenant population, fixed across shard counts *)
  calls : int;  (** per client; must be a multiple of [batch] *)
  batch : int;  (** ring batch size *)
  trials : int;
}

val default_config : config

val run : ?runner:Runner.t -> ?config:config -> unit -> Ablations.entry list
(** Row order: per shard count — msgq aggregate, msgq p99, ring
    aggregate, ring p99. *)
