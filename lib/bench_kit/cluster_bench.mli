(** E21 — the sharded control plane under load: a {!Smod_cluster.Coordinator}
    over K shard kernels, measured three ways.

    {b Scaling} (lazy mode, no control traffic): the E20 sweep re-run
    through the cluster path — consistent-hash placement plus the
    per-dispatch epoch check — per transport and shard count.

    {b Rotation storm} (K = [storm_shards], both coherence modes):
    [storm_rotations] keystore rotations published between every pair of
    client rounds.  Rows per (transport, mode): storm aggregate
    throughput, storm p99, and mean propagation latency.

    {b Placement and movement}: reshard churn K=4→5 (consistent-hash vs
    FNV mod-K), Zipf-skew balance (single-hash vs power-of-two-choices),
    and a live tenant migration timed end to end (drain + scrub per
    session on the source, pooled re-attach on the destination).

    All K shards of a cell share one coordinator (single-domain mutable
    state), so each task is a whole (cell, trial); a {!Runner} spreads
    cells × trials over domains and results are identical for any job
    count. *)

type config = {
  shard_counts : int list;  (** scaling sweep, default 1 / 2 / 4 / 8 *)
  clients : int;  (** tenant population, fixed across shard counts *)
  rounds : int;  (** barrier-separated rounds per cell *)
  calls_per_round : int;  (** per client; a multiple of [batch] for ring *)
  batch : int;  (** ring batch size *)
  storm_shards : int;  (** K for the rotation-storm cells *)
  storm_rotations : int;  (** publishes between each pair of rounds *)
  migration_sessions : int;  (** sessions the migrated tenant holds *)
  trials : int;
}

val default_config : config

val task_count : config -> int
(** Independent tasks the plan decomposes into (for the catalog). *)

val run : ?runner:Runner.t -> ?config:config -> unit -> Ablations.entry list
(** Row order: msgq scaling (aggregate, p99 per K), ring scaling, then
    per (transport, mode) the storm triple (aggregate, p99, propagation),
    then the placement stats and migration rows. *)
