module Machine = Smod_kern.Machine

type config = { smod_calls : int; rpc_calls : int; trials : int; noise : float }

let paper_config = { smod_calls = 1_000_000; rpc_calls = 100_000; trials = 10; noise = 0.012 }
let quick_config = { smod_calls = 20_000; rpc_calls = 4_000; trials = 10; noise = 0.012 }

type row_kind = Getpid | Smod_getpid | Smod_incr | Rpc

(* Paper order: getpid, SMOD-getpid, SMOD(test-incr), RPC. *)
let row_kinds =
  [
    ("getpid()", Getpid);
    ("SMOD(SMOD-getpid)", Smod_getpid);
    ("SMOD(test-incr)", Smod_incr);
    ("RPC(test-incr)", Rpc);
  ]

let spec_of config name kind =
  match kind with
  | Rpc ->
      { Trial.name; calls_per_trial = config.rpc_calls; trials = config.trials; warmup = 20 }
  | Getpid | Smod_getpid | Smod_incr ->
      {
        Trial.name;
        calls_per_trial = config.smod_calls;
        trials = config.trials;
        warmup = 100;
      }

(* One (row, trial) measurement in a private world: each task owns its
   machine, clock and RNG, so tasks are independent of execution order and
   can run on any domain.  The per-task world seed is derived from the
   (row, trial) coordinates alone — rerunning trial k of a row alone gives
   exactly the mean it has in a full run. *)
let measure_one config ~kind ~name ~row_index ~trial =
  let seed = Int64.of_int (100 + (1000 * row_index) + trial) in
  let world = World.create ~seed ~with_rpc:(kind = Rpc) () in
  let clock = Machine.clock world.World.machine in
  let spec = spec_of config name kind in
  let result = ref Float.nan in
  World.spawn_seclibc_client world ~name:"fig8-client" (fun p conn ->
      let f =
        match kind with
        | Getpid -> fun _ -> ignore (Machine.sys_getpid world.World.machine p)
        | Smod_getpid -> fun _ -> ignore (Smod_libc.Seclibc.Client.getpid conn)
        | Smod_incr -> fun i -> ignore (Smod_libc.Seclibc.Client.test_incr conn i)
        | Rpc ->
            let client = World.rpc_client world p ~client_port:41000 in
            fun i -> ignore (Smod_rpc.Testincr.incr client i)
      in
      result := Trial.run_one ~clock ~noise:config.noise ~trial spec f);
  World.run world;
  !result

let run ?(runner = Runner.sequential) config =
  let tasks =
    List.concat
      (List.mapi
         (fun row_index (name, kind) ->
           List.init config.trials (fun trial -> (row_index, name, kind, trial)))
         row_kinds)
  in
  let means =
    Runner.map runner tasks (fun (row_index, name, kind, trial) ->
        measure_one config ~kind ~name ~row_index ~trial)
  in
  let means = Array.of_list means in
  List.mapi
    (fun row_index (name, kind) ->
      Trial.row_of_means (spec_of config name kind)
        (Array.sub means (row_index * config.trials) config.trials))
    row_kinds

let render = Trial.figure8_table
