(* The experiment catalog: every bench section (E1, E9..E20) as data, so
   the harness, smodctl and the tests share one definition of what runs,
   in what order, with what parallel grain.

   Each section decomposes into independent tasks (see Figure8, Ablations
   and Scaleout) executed over a Runner; [run_document] produces the
   versioned bench JSON document.  Because every task is deterministic and
   task metrics merge in task order, the document is bit-identical for any
   job count — which is also what the determinism test in
   test/test_metrics.ml asserts. *)

type outcome = { rows : Bench_json.row list; rendered : string }

type section = {
  s_id : string;
  s_title : string;
  s_unit : string;
  s_tasks : full:bool -> int;  (* independent tasks a Runner can spread *)
  s_dispatches : full:bool -> int;  (* rough simulated dispatch count *)
  s_run : full:bool -> runner:Runner.t -> outcome;
}

let scale ~full n = if full then n * 5 else n

let entries_outcome ~title ~unit_ entries =
  {
    rows = Bench_json.rows_of_entries ~unit_ entries;
    rendered = Ablations.render ~title ~unit_header:unit_ entries;
  }

let figure8_config ~full = if full then Figure8.paper_config else Figure8.quick_config

let figure8_outcome ~full ~runner =
  let config = figure8_config ~full in
  let rows = Figure8.run ~runner config in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "=== Figure 8: Performance Comparisons (%s counts) ===\n"
       (if full then "paper-exact" else "scaled"));
  Buffer.add_string buf (Figure8.render rows);
  (* Headline ratios the paper calls out in section 4.5 / section 5. *)
  (match rows with
  | [ getpid; smod_getpid; smod_incr; rpc ] ->
      Buffer.add_string buf
        (Printf.sprintf "SMOD(test-incr) / getpid()        = %5.2fx (paper: %.2fx)\n"
           (smod_incr.Trial.mean_us /. getpid.Trial.mean_us)
           (6.407 /. 0.658));
      Buffer.add_string buf
        (Printf.sprintf
           "RPC(test-incr)  / SMOD(test-incr) = %5.2fx (paper: %.2fx, \"factor of 10\")\n"
           (rpc.Trial.mean_us /. smod_incr.Trial.mean_us)
           (63.23 /. 6.407));
      Buffer.add_string buf
        (Printf.sprintf "SMOD(SMOD-getpid) - SMOD(test-incr) = %+.3f us (paper: %+.3f us)\n"
           (smod_getpid.Trial.mean_us -. smod_incr.Trial.mean_us)
           (6.532 -. 6.407))
  | _ -> ());
  { rows = List.map Bench_json.row_of_trial rows; rendered = Buffer.contents buf }

let e20_config ~full =
  let c = Scaleout.default_config in
  if full then { c with Scaleout.calls = c.Scaleout.calls * 5 } else c

let e21_config ~full =
  let c = Cluster_bench.default_config in
  if full then { c with Cluster_bench.rounds = c.Cluster_bench.rounds * 5 } else c

let e24_config ~full =
  let c = Fused_bench.default_config in
  if full then { c with Fused_bench.rounds = c.Fused_bench.rounds * 5 } else c

let e25_config ~full =
  let c = Vexec_bench.default_config in
  if full then { c with Vexec_bench.rounds = c.Vexec_bench.rounds * 5 } else c

let e22_config ~full =
  let c = Polling.default_config in
  if full then
    { c with Polling.poller_sessions = c.Polling.poller_sessions @ [ 10_000 ] }
  else c

let e22_cells c = List.length c.Polling.trap_sessions + List.length c.Polling.poller_sessions

let e22_calls c =
  List.fold_left (fun acc s -> acc + (s * c.Polling.batches * c.Polling.batch)) 0
    (c.Polling.trap_sessions @ c.Polling.poller_sessions)

let sections =
  [
    {
      s_id = "e1";
      s_title = "Figure 8: performance comparisons";
      s_unit = "us/call";
      s_tasks = (fun ~full -> 4 * (figure8_config ~full).Figure8.trials);
      s_dispatches =
        (fun ~full ->
          let c = figure8_config ~full in
          c.Figure8.trials * ((3 * c.Figure8.smod_calls) + c.Figure8.rpc_calls));
      s_run = figure8_outcome;
    };
    {
      s_id = "e9";
      s_title = "E9: per-call policy complexity (section 5 prediction)";
      s_unit = "us/call";
      s_tasks = (fun ~full:_ -> 10 * 5);
      s_dispatches = (fun ~full -> 10 * 5 * scale ~full 2_000);
      s_run =
        (fun ~full ~runner ->
          Ablations.policy_ablation ~runner ~calls:(scale ~full 2_000) ()
          |> entries_outcome ~title:"E9: per-call policy complexity (section 5 prediction)"
               ~unit_:"us/call");
    };
    {
      s_id = "e10";
      s_title = "E10: shared stack vs copy-based marshaling (section 3)";
      s_unit = "us/call";
      s_tasks = (fun ~full:_ -> 4 * 5);
      s_dispatches = (fun ~full -> 4 * 5 * 2 * scale ~full 500);
      s_run =
        (fun ~full ~runner ->
          Ablations.marshal_ablation ~runner ~calls:(scale ~full 500) ()
          |> entries_outcome ~title:"E10: shared stack vs copy-based marshaling (section 3)"
               ~unit_:"us/call");
    };
    {
      s_id = "e11";
      s_title = "E11: session establishment, encrypted vs unmap-only (section 4.1)";
      s_unit = "us/session";
      s_tasks = (fun ~full:_ -> 6 * 5);
      s_dispatches = (fun ~full:_ -> 6 * 5 * 40);
      s_run =
        (fun ~full:_ ~runner ->
          Ablations.protection_ablation ~runner ()
          |> entries_outcome
               ~title:"E11: session establishment, encrypted vs unmap-only (section 4.1)"
               ~unit_:"us/session");
    };
    {
      s_id = "e12";
      s_title = "E12: shared-handle bottleneck, queued requests at service (section 4.3)";
      s_unit = "mean queue depth";
      s_tasks = (fun ~full:_ -> 8);
      s_dispatches = (fun ~full:_ -> 2 * 300 * (1 + 2 + 4 + 8));
      s_run =
        (fun ~full:_ ~runner ->
          Ablations.handle_sharing ~runner ()
          |> entries_outcome
               ~title:"E12: shared-handle bottleneck, queued requests at service (section 4.3)"
               ~unit_:"mean queue depth");
    };
    {
      s_id = "e13";
      s_title = "E13: per-call cost of TOCTOU mitigations (section 4.4)";
      s_unit = "us/call";
      s_tasks = (fun ~full:_ -> 3 * 5);
      s_dispatches = (fun ~full -> 3 * 5 * scale ~full 1_000);
      s_run =
        (fun ~full ~runner ->
          Ablations.toctou_cost ~runner ~calls:(scale ~full 1_000) ()
          |> entries_outcome ~title:"E13: per-call cost of TOCTOU mitigations (section 4.4)"
               ~unit_:"us/call");
    };
    {
      s_id = "e14";
      s_title = "E14: the section-5 future-work fast path";
      s_unit = "us/call";
      s_tasks = (fun ~full:_ -> 2 * 5);
      s_dispatches = (fun ~full -> 2 * 5 * scale ~full 2_000);
      s_run =
        (fun ~full ~runner ->
          Ablations.fast_path ~runner ~calls:(scale ~full 2_000) ()
          |> entries_outcome ~title:"E14: the section-5 future-work fast path"
               ~unit_:"us/call");
    };
    {
      s_id = "e15";
      s_title = "E15: per-trap overhead of syscall interposition (section 2)";
      s_unit = "us/call";
      s_tasks = (fun ~full:_ -> 2 * 5);
      s_dispatches = (fun ~full -> 2 * 5 * scale ~full 1_000);
      s_run =
        (fun ~full ~runner ->
          Ablations.systrace_overhead ~runner ~calls:(scale ~full 1_000) ()
          |> entries_outcome
               ~title:"E15: per-trap overhead of syscall interposition (section 2)"
               ~unit_:"us/call");
    };
    {
      s_id = "e16";
      s_title = "E16: smodd session pooling, cold fork vs pooled attach (lib/pool)";
      s_unit = "us/session (throughput rows: kcalls/s)";
      s_tasks = (fun ~full:_ -> 8 * 3);
      s_dispatches = (fun ~full -> 2 * 3 * (1 + 8 + 64) * scale ~full 150);
      s_run =
        (fun ~full ~runner ->
          Ablations.pooling ~runner ~calls:(scale ~full 150) ()
          |> entries_outcome
               ~title:"E16: smodd session pooling, cold fork vs pooled attach (lib/pool)"
               ~unit_:"us/session (throughput rows: kcalls/s)");
    };
    {
      s_id = "e18";
      s_title =
        "E18: dispatch rings vs msgq transport, per-call latency by batch size (lib/ring)";
      s_unit = "us/call";
      s_tasks = (fun ~full:_ -> 8 * 5);
      s_dispatches = (fun ~full -> 2 * 5 * scale ~full 200 * (1 + 4 + 16 + 64));
      s_run =
        (fun ~full ~runner ->
          Ablations.ring_dispatch ~runner ~rounds:(scale ~full 200) ()
          |> entries_outcome
               ~title:
                 "E18: dispatch rings vs msgq transport, per-call latency by batch size \
                  (lib/ring)"
               ~unit_:"us/call");
    };
    {
      s_id = "e19";
      s_title =
        "E19: compiled decision programs vs interpreted KeyNote, per-call latency by \
         assertion count (lib/keynote/compile)";
      s_unit = "us/call";
      s_tasks = (fun ~full:_ -> 16 * 5);
      s_dispatches = (fun ~full -> 4 * 2 * 2 * 5 * scale ~full 100 * 16);
      s_run =
        (fun ~full ~runner ->
          Ablations.policy_compile_dispatch ~runner ~rounds:(scale ~full 100) ()
          |> entries_outcome
               ~title:
                 "E19: compiled decision programs vs interpreted KeyNote, per-call latency \
                  by assertion count (lib/keynote/compile)"
               ~unit_:"us/call");
    };
    {
      s_id = "e20";
      s_title =
        "E20: sharded smodd scale-out, aggregate throughput by shard count (lib/pool/shard)";
      s_unit = "kcalls/s (p99 rows: us)";
      s_tasks =
        (fun ~full:_ ->
          let c = Scaleout.default_config in
          2 * c.Scaleout.trials * List.fold_left ( + ) 0 c.Scaleout.shard_counts);
      s_dispatches =
        (fun ~full ->
          let c = e20_config ~full in
          2 * c.Scaleout.trials
          * List.length c.Scaleout.shard_counts
          * c.Scaleout.clients * c.Scaleout.calls);
      s_run =
        (fun ~full ~runner ->
          Scaleout.run ~runner ~config:(e20_config ~full) ()
          |> entries_outcome
               ~title:
                 "E20: sharded smodd scale-out, aggregate throughput by shard count \
                  (lib/pool/shard)"
               ~unit_:"kcalls/s (p99 rows: us)");
    };
    {
      s_id = "e21";
      s_title =
        "E21: sharded control plane — coherence modes, consistent-hash placement, live \
         migration (lib/cluster)";
      s_unit = "kcalls/s (p99/propagation/migration rows: us; placement rows: ratio or %)";
      s_tasks = (fun ~full:_ -> Cluster_bench.task_count Cluster_bench.default_config);
      s_dispatches =
        (fun ~full ->
          let c = e21_config ~full in
          let cells =
            (2 * List.length c.Cluster_bench.shard_counts) (* scaling: 2 transports *)
            + 4 (* storm: 2 transports x 2 modes *)
          in
          cells * c.Cluster_bench.trials * c.Cluster_bench.clients * c.Cluster_bench.rounds
          * c.Cluster_bench.calls_per_round);
      s_run =
        (fun ~full ~runner ->
          Cluster_bench.run ~runner ~config:(e21_config ~full) ()
          |> entries_outcome
               ~title:
                 "E21: sharded control plane — coherence modes, consistent-hash placement, \
                  live migration (lib/cluster)"
               ~unit_:"kcalls/s (p99/propagation/migration rows: us; placement rows: ratio \
                       or %)");
    };
    {
      s_id = "e22";
      s_title =
        "E22: zero-trap data path — kernel poller + effects multiplexing vs trap-per-batch";
      s_unit = "us/call (traps rows: traps/call)";
      s_tasks = (fun ~full -> e22_cells (e22_config ~full) * (e22_config ~full).Polling.trials);
      s_dispatches = (fun ~full ->
          let c = e22_config ~full in
          e22_calls c * c.Polling.trials);
      s_run =
        (fun ~full ~runner ->
          Polling.run ~runner ~config:(e22_config ~full) ()
          |> entries_outcome
               ~title:
                 "E22: zero-trap data path — kernel poller + effects multiplexing vs \
                  trap-per-batch"
               ~unit_:"us/call (traps rows: traps/call)");
    };
    {
      s_id = "e24";
      s_title =
        "E24: fused batch policy evaluation — one compiled pass per batch vs per-slot \
         (lib/keynote/fuse)";
      s_unit = "us/call (speedup rows: x; compile mem rows: KB or x)";
      s_tasks = (fun ~full -> Fused_bench.task_count (e24_config ~full));
      s_dispatches = (fun ~full -> Fused_bench.dispatch_count (e24_config ~full));
      s_run =
        (fun ~full ~runner ->
          Fused_bench.run ~runner ~config:(e24_config ~full) ()
          |> entries_outcome
               ~title:
                 "E24: fused batch policy evaluation — one compiled pass per batch vs \
                  per-slot (lib/keynote/fuse)"
               ~unit_:"us/call (speedup rows: x; compile mem rows: KB or x)");
    };
    {
      s_id = "e25";
      s_title =
        "E25: vectorized batch-major residue execution — one pass per opcode over all \
         lanes vs slot-major (lib/keynote/vexec)";
      s_unit = "us/call (speedup rows: x)";
      s_tasks = (fun ~full -> Vexec_bench.task_count (e25_config ~full));
      s_dispatches = (fun ~full -> Vexec_bench.dispatch_count (e25_config ~full));
      s_run =
        (fun ~full ~runner ->
          Vexec_bench.run ~runner ~config:(e25_config ~full) ()
          |> entries_outcome
               ~title:
                 "E25: vectorized batch-major residue execution — one pass per opcode \
                  over all lanes vs slot-major (lib/keynote/vexec)"
               ~unit_:"us/call (speedup rows: x)");
    };
  ]

let find id = List.find_opt (fun s -> s.s_id = id) sections

(* Rough single-core simulated-dispatch rate of the harness, used only for
   the --list / bench-status wall-clock estimates; the real number depends
   on the host, the experiment mix and the cost of each dispatch path. *)
let approx_dispatch_rate = 450_000.0

let estimate_seconds ~full s = float_of_int (s.s_dispatches ~full) /. approx_dispatch_rate

(* Run the given sections in catalog order and assemble the bench JSON
   document.  [on_section] fires after each section with its outcome (the
   harness prints; tests pass nothing).  The metric snapshot is the
   calling domain's registry — run inside [Smod_metrics.with_registry]
   for an isolated document. *)
let run_document ?(on_section = fun _ _ -> ()) ?meta ~full ~runner ids =
  let chosen = List.filter (fun s -> List.mem s.s_id ids) sections in
  let experiments =
    List.map
      (fun s ->
        let o = s.s_run ~full ~runner in
        on_section s o;
        Bench_json.experiment ~id:s.s_id ~title:s.s_title o.rows)
      chosen
  in
  {
    Bench_json.mode = (if full then "full" else "quick");
    meta;
    experiments;
    metrics = Smod_metrics.snapshot ();
  }
