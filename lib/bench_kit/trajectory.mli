(** The perf trajectory: an append-only record of headline metrics, one
    entry per dated snapshot under [bench/baselines/], serialised as the
    checked-in [BENCH_TRAJECTORY.json] ("smod-bench-trajectory" schema).

    Headline metrics are [float option] per capture: a smoke run that
    skipped a section records [None] (JSON null) rather than a fake
    zero.  [smodctl bench capture] and [bench promote] append entries;
    [benchdiff --trajectory] renders the history as a table. *)

type entry = {
  t_date : string;  (** "YYYY-MM-DD" *)
  t_commit : string;  (** git short sha, or "nogit" *)
  t_mode : string;  (** "quick" or "full" *)
  t_jobs : int;
  t_snapshot : string;  (** snapshot file name, e.g. "2026-08-08_ab12cd3.json" *)
  t_values : (string * float option) list;  (** headline key -> value *)
}

val headline_keys : string list
(** In order: [e1_test_incr_us], [e9_slope_us], [e9_slope_compiled_us],
    [e16_attach_us], [e18_ring_b16_us], [e19_compiled_kn16_us],
    [e20_ring_k8_kcalls]. *)

val entry_of_doc : snapshot:string -> Bench_json.doc -> entry
(** Distil a bench document into a trajectory entry.  The E9 slopes are
    least-squares fits (µs per assertion) over the keynote-1/4/16 rows;
    other headlines are single row means.  Missing sections yield
    [None]. *)

val to_json : entry list -> Smod_util.Json.t
val to_string : entry list -> string
val of_json : Smod_util.Json.t -> entry list
val of_string : string -> entry list
(** Raise {!Smod_util.Json.Parse_error} on malformed input or an
    unknown schema/version. *)

val sorted : entry list -> entry list
(** History order: by (date, commit, snapshot name). *)

val append : entry list -> entry -> entry list
(** Append-and-sort; a duplicate (same date, commit and snapshot) is
    dropped so re-promoting a snapshot is idempotent. *)

val render : entry list -> string
(** The metric-history table ([benchdiff --trajectory]). *)
