(** Trial runner for the Figure 8 methodology: T trials of N calls each;
    report the per-call mean and the standard deviation across trial
    means.

    The simulated clock's per-charge jitter averages out over a long
    trial, so an optional per-trial {e load factor} (Gaussian around 1.0)
    models the run-to-run noise a real host shows from interrupts and
    scheduler activity — that is what the paper's stdev column captures.
    Disable it with [noise = 0.0] for exact accounting. *)

type spec = {
  name : string;
  calls_per_trial : int;
  trials : int;
  warmup : int;  (** calls executed before timing starts *)
}

type row = {
  spec : spec;
  mean_us : float;  (** mean per-call cost over trials *)
  stdev_us : float;  (** stdev of the trial means *)
  trial_means : float array;
}

val run :
  clock:Smod_sim.Clock.t ->
  ?noise:float ->
  ?noise_seed:int64 ->
  spec ->
  (int -> unit) ->
  row
(** [run ~clock spec f] calls [f i] for each call index, reading elapsed
    simulated time around each trial.  [noise] is the per-trial load
    factor's sigma (default 0.012).  Trial [k]'s factor is derived from
    [(noise_seed, k)] alone, so it does not depend on which other trials
    ran or in what order. *)

val run_one :
  clock:Smod_sim.Clock.t ->
  ?noise:float ->
  ?noise_seed:int64 ->
  trial:int ->
  spec ->
  (int -> unit) ->
  float
(** One trial of [spec] (warmup included — intended for a fresh world per
    task), returning the noise-adjusted per-call mean.  [run_one ~trial:k]
    applies exactly the factor trial [k] of {!run} would, so a run
    decomposed into per-trial tasks and reassembled with {!row_of_means}
    matches a sequential {!run} trial-for-trial. *)

val row_of_means : spec -> float array -> row
(** Assemble a row from per-trial means (index = trial number). *)

val figure8_table : row list -> string
(** Render in the layout of the paper's Figure 8. *)

val generic_table : title:string -> header:string list -> string list list -> string
