(* E20: sharded smodd scale-out.

   The paper's §5 scaling question — many clients, many modules — gets a
   multi-kernel answer: a fixed tenant population is partitioned by
   hash-based session placement (Smod_pool.Shard) over K independent
   simulated kernels, each running its own smodd.  Shards share nothing
   (no locks, no cross-kernel traffic), so a router-fronted deployment
   scales by adding kernels; what this experiment measures is how far
   from linear the aggregate gets as K grows, per transport.

   Aggregate throughput is the sum of per-shard simulated rates
   (calls / simulated elapsed time): each shard's kernel is its own
   timeline, exactly as K machines racked side by side would be.  The
   latency rows pool every client-observed per-call sample across shards
   and report the p99 — splitting a population over more kernels shortens
   the queue each call waits in, so the tail drops as K rises.

   Each (K, transport, trial, shard) cell is an independent task over a
   private world, so the Runner can drive every shard on its own domain;
   results are identical for any job count. *)

module Machine = Smod_kern.Machine
module Clock = Smod_sim.Clock
module Stats = Smod_util.Stats

type transport = Msgq | Ring

let transport_name = function Msgq -> "msgq" | Ring -> "ring"

type config = {
  shard_counts : int list;
  clients : int;  (* total tenant population, fixed across shard counts *)
  calls : int;  (* per client; a multiple of [batch] *)
  batch : int;  (* ring batch size *)
  trials : int;
}

let default_config =
  { shard_counts = [ 1; 2; 4; 8 ]; clients = 32; calls = 160; batch = 16; trials = 3 }

(* Stable tenant names are the placement keys: the partition is a pure
   function of (name, K), the way a real router would compute it. *)
let tenant_names n = List.init n (fun i -> Printf.sprintf "tenant-%03d" i)

(* Same smodd shape as E16: one module, pooled handles, deep queue. *)
let pool_config =
  {
    Smod_pool.Smodd.default_config with
    max_handles_per_module = 16;
    max_total_handles = 16;
    max_queue_depth = 128;
  }

type shard_result = {
  sr_calls : int;
  sr_elapsed_us : float;  (* simulated time this shard's kernel ran *)
  sr_samples : float array;  (* client-observed per-call latency, us *)
}

(* One shard of one (K, transport) cell: a private kernel + smodd serving
   exactly the tenants the hash places here. *)
let run_shard ~transport ~cfg ~shards ~shard ~trial =
  let mine =
    List.filter
      (fun name -> Smod_pool.Shard.place ~shards name = shard)
      (tenant_names cfg.clients)
  in
  let seed = Int64.of_int (8000 + (997 * trial) + (131 * shards) + (17 * shard)) in
  let world = World.create ~seed ~pool:pool_config ~with_rpc:false () in
  let clock = Machine.clock world.World.machine in
  let samples = ref [] in
  let done_calls = ref 0 in
  List.iter
    (fun name ->
      World.spawn_seclibc_client world ~name (fun _p conn ->
          match transport with
          | Msgq ->
              for j = 1 to cfg.calls do
                let t0 = Clock.now_cycles clock in
                ignore (Smod_libc.Seclibc.Client.test_incr conn j);
                samples := Clock.elapsed_us clock ~since:t0 :: !samples;
                incr done_calls
              done
          | Ring ->
              ignore (Secmodule.Stub.arm_ring conn);
              let argss = List.init cfg.batch (fun i -> [| i |]) in
              for _ = 1 to cfg.calls / cfg.batch do
                let t0 = Clock.now_cycles clock in
                ignore (Secmodule.Stub.call_batch conn ~func:"test_incr" argss);
                samples :=
                  (Clock.elapsed_us clock ~since:t0 /. float_of_int cfg.batch) :: !samples;
                done_calls := !done_calls + cfg.batch
              done))
    mine;
  World.run world;
  {
    sr_calls = !done_calls;
    sr_elapsed_us = Clock.now_us clock;
    sr_samples = Array.of_list (List.rev !samples);
  }

let kcalls_per_sec r =
  if r.sr_calls = 0 then 0.0 else float_of_int r.sr_calls *. 1_000.0 /. r.sr_elapsed_us

let run ?(runner = Runner.sequential) ?(config = default_config) () =
  let cells =
    List.concat_map
      (fun shards -> List.map (fun tr -> (shards, tr)) [ Msgq; Ring ])
      config.shard_counts
  in
  let tasks =
    List.concat_map
      (fun (ci, (shards, transport)) ->
        List.concat
          (List.init config.trials (fun trial ->
               List.init shards (fun shard -> (ci, shards, transport, trial, shard)))))
      (List.mapi (fun i c -> (i, c)) cells)
  in
  let results =
    Runner.map runner tasks (fun (_, shards, transport, trial, shard) ->
        run_shard ~transport ~cfg:config ~shards ~shard ~trial)
  in
  (* Regroup shard results per (cell, trial): aggregate rate is the sum of
     per-shard rates; the latency pool is every shard's samples. *)
  let per_trial = Hashtbl.create 64 in
  List.iter2
    (fun (ci, _, _, trial, _) r ->
      let key = (ci, trial) in
      let prev = Option.value (Hashtbl.find_opt per_trial key) ~default:[] in
      Hashtbl.replace per_trial key (r :: prev))
    tasks results;
  List.concat_map
    (fun (ci, (shards, transport)) ->
      let rates = Array.make config.trials 0.0 in
      let p99s = Array.make config.trials 0.0 in
      for trial = 0 to config.trials - 1 do
        let shard_results = Option.value (Hashtbl.find_opt per_trial (ci, trial)) ~default:[] in
        rates.(trial) <-
          List.fold_left (fun acc r -> acc +. kcalls_per_sec r) 0.0 shard_results;
        let pooled = Array.concat (List.map (fun r -> r.sr_samples) shard_results) in
        p99s.(trial) <- Stats.percentile pooled 99.0
      done;
      let name = transport_name transport in
      [
        Ablations.
          {
            label = Printf.sprintf "%s K=%d aggregate (kcalls/s)" name shards;
            mean_us = Stats.mean rates;
            stdev_us = Stats.stdev rates;
          };
        Ablations.
          {
            label = Printf.sprintf "%s K=%d p99 (us)" name shards;
            mean_us = Stats.mean p99s;
            stdev_us = Stats.stdev p99s;
          };
      ])
    (List.mapi (fun i c -> (i, c)) cells)
