module Machine = Smod_kern.Machine
open Secmodule

type t = {
  machine : Machine.t;
  smod : Smod.t;
  libc_entry : Registry.entry;
  transport : Smod_rpc.Transport.t;
  portmap : Smod_rpc.Portmap.t;
  rpc_port : int;
  pool : Smod_pool.Smodd.t option;
  registry : Smod_metrics.t;
      (* The metrics registry this world reports into: the creating
         domain's registry at creation time.  A world must be driven on
         the domain whose registry this is — subsystem instruments
         resolve against the executing domain's registry, so driving it
         elsewhere would split its metrics across registries. *)
}

let rpc_port = 2049

let create ?seed ?jitter ?(protection = Registry.Encrypted) ?policy ?pool ?(with_rpc = true) ()
    =
  let machine = Machine.create ?seed ?jitter () in
  let smod = Smod.install machine () in
  let pool = Option.map (fun config -> Smod_pool.Smodd.install smod ~config ()) pool in
  let libc_entry = Smod_libc.Seclibc.install smod ~protection ?policy () in
  let transport = Smod_rpc.Transport.create machine in
  let portmap = Smod_rpc.Portmap.create () in
  if with_rpc then
    ignore
      (Machine.spawn machine ~daemon:true ~name:"rpc.testincrd" (fun p ->
           Smod_rpc.Server.serve_forever transport portmap p ~port:rpc_port
             (Smod_rpc.Testincr.service ())));
  {
    machine;
    smod;
    libc_entry;
    transport;
    portmap;
    rpc_port;
    pool;
    registry = Smod_metrics.current ();
  }

let credential ?(principal = "client") _t = Credential.make ~principal ()

let spawn_seclibc_client t ~name ?principal body =
  let cred = credential ?principal t in
  ignore
    (Machine.spawn t.machine ~name (fun p ->
         Crt0.run_client t.smod p ~module_name:Smod_libc.Seclibc.module_name
           ~version:Smod_libc.Seclibc.version ~credential:cred (fun conn -> body p conn)))

let rpc_client t proc ~client_port =
  Smod_rpc.Client.create t.transport t.portmap proc ~client_port

let run t = Machine.run t.machine
