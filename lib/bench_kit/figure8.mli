(** Reproduction of the paper's Figure 8: the four-row microbenchmark
    comparing native getpid, SMOD(SMOD-getpid), SMOD(test-incr) and
    RPC(test-incr).

    Each (row, trial) pair runs in its own private world with a seed
    derived from its coordinates, so the table decomposes into
    [4 * trials] independent tasks a {!Runner} can spread across
    domains — results are identical for any job count. *)

type config = {
  smod_calls : int;  (** paper: 1_000_000 *)
  rpc_calls : int;  (** paper: 100_000 *)
  trials : int;  (** paper: 10 *)
  noise : float;  (** per-trial load-factor sigma; 0.0 disables *)
}

val paper_config : config
(** The paper's exact counts (slow under simulation: ~3×10^7 dispatches). *)

val quick_config : config
(** Scaled-down counts (per-call means are unaffected by trial length). *)

val run : ?runner:Runner.t -> config -> Trial.row list
(** Rows in paper order: getpid, SMOD(SMOD-getpid), SMOD(test-incr),
    RPC(test-incr).  [runner] defaults to {!Runner.sequential}. *)

val render : Trial.row list -> string
