(** Machine-readable bench artifacts.

    The harness ([bench/main.ml --json PATH]) serialises every experiment
    row it prints, plus a {!Smod_metrics.snapshot} of the default
    registry, into a versioned JSON document.  [bin/benchdiff.ml] reloads
    two such documents and applies {!compare_docs} — the regression gate
    CI runs against [bench/baseline.json]. *)

val schema_name : string
val schema_version : int

type row = { r_label : string; r_unit : string; r_mean : float; r_stdev : float }
type experiment = { e_id : string; e_title : string; e_rows : row list }

type doc = {
  mode : string;  (** "quick" or "full" *)
  experiments : experiment list;
  metrics : Smod_metrics.snapshot;
}

val row : label:string -> ?unit_:string -> mean:float -> stdev:float -> unit -> row
val row_of_trial : ?unit_:string -> Trial.row -> row
val rows_of_entries : ?unit_:string -> Ablations.entry list -> row list
val experiment : id:string -> title:string -> row list -> experiment

val to_json : doc -> Smod_util.Json.t
val to_string : doc -> string
(** Pretty-printed, newline-terminated (the committed-baseline format). *)

val of_json : Smod_util.Json.t -> doc
val of_string : string -> doc
(** Raise {!Smod_util.Json.Parse_error} on malformed input, a wrong
    [schema] tag, or an unsupported [schema_version]. *)

(** {1 Drift comparison} *)

type drift = {
  d_experiment : string;
  d_label : string;
  d_base : float;
  d_cur : float;
  d_ok : bool;
  d_abs_eps : float;  (** the additive epsilon this row was judged with *)
}

type comparison = {
  compared : int;
  drifts : drift list;  (** rows present in both documents, one entry each *)
  missing : string list;  (** "<exp>/<label>" in baseline but not current *)
  extra : string list;  (** in current but not baseline *)
}

val compare_docs :
  ?rel_tol:float ->
  ?abs_eps:float ->
  ?abs_eps_for:(string * float) list ->
  baseline:doc ->
  current:doc ->
  unit ->
  comparison
(** Compare per-row means over the intersection of rows.  A row passes
    when [|cur - base| <= abs_eps + rel_tol * |base|]; the additive
    [abs_eps] (default 1e-9) keeps exact-zero baseline rows from turning
    any change into an infinite relative drift.  [abs_eps_for] overrides
    the epsilon for specific experiment ids ([("e12", 0.05)]); every
    {!drift} records the epsilon it was judged with.  Rows only on one
    side are reported but do not fail the comparison — CI smoke runs a
    subset of the experiments in the committed baseline. *)

val comparison_ok : comparison -> bool
(** True when at least one row was compared and every compared row is
    within tolerance. *)
