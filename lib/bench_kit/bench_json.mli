(** Machine-readable bench artifacts.

    The harness ([bench/main.ml --json PATH]) serialises every experiment
    row it prints, plus a {!Smod_metrics.snapshot} of the default
    registry, into a versioned JSON document.  [bin/benchdiff.ml] reloads
    two such documents and applies {!compare_docs} — the regression gate
    CI runs against [bench/baseline.json]. *)

val schema_name : string

val schema_version : int
(** 2 since the dated-baseline work: the header may carry a [meta] block
    with capture date, commit, jobs and captured sections. *)

type row = { r_label : string; r_unit : string; r_mean : float; r_stdev : float }
type experiment = { e_id : string; e_title : string; e_rows : row list }

type meta = {
  mt_date : string;  (** capture date, "YYYY-MM-DD" (UTC) *)
  mt_commit : string;  (** git short sha at capture, or "nogit" *)
  mt_jobs : int;  (** runner domains the capture ran with *)
  mt_sections : string list;  (** experiment ids captured *)
}

type doc = {
  mode : string;  (** "quick" or "full" *)
  meta : meta option;  (** present on dated snapshots ([smodctl bench capture]) *)
  experiments : experiment list;
  metrics : Smod_metrics.snapshot;
}

val row : label:string -> ?unit_:string -> mean:float -> stdev:float -> unit -> row
val row_of_trial : ?unit_:string -> Trial.row -> row
val rows_of_entries : ?unit_:string -> Ablations.entry list -> row list
val experiment : id:string -> title:string -> row list -> experiment

val to_json : doc -> Smod_util.Json.t
val to_string : doc -> string
(** Pretty-printed, newline-terminated (the committed-baseline format). *)

val of_json : Smod_util.Json.t -> doc
val of_string : string -> doc
(** Raise {!Smod_util.Json.Parse_error} on malformed input, a wrong
    [schema] tag, or an unsupported [schema_version] — the version error
    carries a one-line regeneration hint, and is deliberately a hard
    error rather than a best-effort read (see {!Diff}). *)
