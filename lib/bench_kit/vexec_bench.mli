(** E25: vectorized batch-major residue execution (lib/keynote/vexec)
    against slot-major fused replay and per-slot compiled execution.

    The ladder varies on [function] (all-residue: fusion hoists
    nothing), served by a private 128-function "vecmod" module so every
    slot of a batch carries a distinct funcID — which defeats both the
    scalar batch memo and the vector pre-pass dedup, making the engines
    comparable at full batch width.  A divergence ladder measures the
    lane-mask ceil(live/W) charge as 0/25/50/100% of lanes deny on the
    matching rung's first test.  Ring and poller transports only: the
    msgq path admits one call per trap and has no batch to vectorize. *)

type config = {
  cells : (int * int) list;  (** (batch size, ladder assertions) *)
  rounds : int;  (** measured batches per trial *)
  trials : int;
  divergence : int list;  (** percent of lanes denying early *)
}

val default_config : config

val run :
  ?runner:Runner.t -> ?config:config -> unit -> Ablations.entry list
(** Mean/p99 rows per (transport, batch, kn, engine) cell, divergence
    rows at ring b64 kn-16, and per-cell speedup ratios: "vec speedup"
    (fused mean / vectorized mean — the headline) and "fused speedup"
    (perslot mean / fused mean).  Deterministic for any runner job
    count: each (cell, trial) builds a private world from
    coordinate-derived seeds. *)

val task_count : config -> int
val dispatch_count : config -> int
