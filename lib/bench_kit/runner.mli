(** Parallel task execution for the bench harness.

    {!map} runs each task on a pool of OCaml 5 domains with a fresh
    domain-local metrics registry, then merges every task's metric
    snapshot into the caller's registry in task-index order.  Given
    deterministic per-task work (private worlds, per-task seeds), results
    and merged metrics are bit-identical for any job count — parallelism
    only changes wall-clock. *)

type t

val create : jobs:int -> t
(** Raises [Invalid_argument] when [jobs < 1]. *)

val sequential : t
(** [create ~jobs:1] — today's single-domain behaviour, same pipeline. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [--jobs] default. *)

val jobs : t -> int

val map : t -> 'a list -> ('a -> 'b) -> 'b list
(** [map t tasks f] applies [f] to every task (scheduling via a shared
    next-task index, at most [jobs t] domains at once, calling domain
    included) and returns results in task order.  Each call of [f] sees a
    fresh {!Smod_metrics.current} registry; snapshots are merged into the
    caller's registry in task order after all workers join.  If any task
    raised, the exception of the lowest-indexed failed task is re-raised
    (after metrics of successful tasks are merged). *)
