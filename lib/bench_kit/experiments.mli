(** The experiment catalog: every bench section (E1, E9..E20) as data,
    shared by the bench harness, [smodctl bench status] and the
    determinism tests.

    Each section decomposes into independent tasks executed over a
    {!Runner}; because every task derives its world seed and metric
    registry from its own coordinates and task snapshots merge in task
    order, [run_document] is bit-identical for any job count. *)

type outcome = {
  rows : Bench_json.row list;
  rendered : string;  (** the human-readable table the harness prints *)
}

type section = {
  s_id : string;  (** "e1", "e9" .. "e20" *)
  s_title : string;
  s_unit : string;
  s_tasks : full:bool -> int;
      (** independent tasks a {!Runner} can spread across domains *)
  s_dispatches : full:bool -> int;
      (** rough simulated dispatch count, for wall-clock estimates *)
  s_run : full:bool -> runner:Runner.t -> outcome;
}

val sections : section list
(** Catalog order = run order = the order sections appear in the JSON
    document. *)

val find : string -> section option

val estimate_seconds : full:bool -> section -> float
(** Rough sequential wall-clock from [s_dispatches] and a fixed
    calibration constant; divide by the job count for the parallel
    estimate.  Only for [--list] / [bench status] display. *)

val run_document :
  ?on_section:(section -> outcome -> unit) ->
  ?meta:Bench_json.meta ->
  full:bool ->
  runner:Runner.t ->
  string list ->
  Bench_json.doc
(** Run the sections whose ids appear in the list (catalog order, unknown
    ids ignored — validate with {!find} first) and assemble the bench
    JSON document.  [on_section] fires after each section completes; the
    harness uses it to print [rendered].  [meta] stamps the capture
    header ([smodctl bench capture] passes date/commit/jobs).  The
    document's metric snapshot is taken from the calling domain's current
    registry — wrap the call in {!Smod_metrics.with_registry} to get an
    isolated snapshot. *)
