(* The perf trajectory: an append-only record of headline metrics, one
   entry per dated snapshot under bench/baselines/ (PR 6).

   Each entry distils a captured bench document down to a handful of
   numbers worth watching across the repo's history — the Figure-8
   dispatch cost, the E9 per-assertion slopes, pooled attach, the ring
   batch-16 fast path, compiled kn-16, the K=8 scale-out aggregate, and
   the fused batch-64 figure.  Entries predating a headline simply lack
   its key; rendering shows "-" for them, never an error.
   Values are [float option]: a smoke capture that skipped a section
   records [None] (JSON null) for its metrics rather than faking a zero,
   so the history stays honest about what each capture actually ran. *)

module Json = Smod_util.Json
module Table = Smod_util.Table

let schema_name = "smod-bench-trajectory"
let schema_version = 1

type entry = {
  t_date : string;  (* "YYYY-MM-DD" *)
  t_commit : string;  (* git short sha, or "nogit" *)
  t_mode : string;  (* "quick" or "full" *)
  t_jobs : int;
  t_snapshot : string;  (* snapshot file name, e.g. "2026-08-08_ab12cd3.json" *)
  t_values : (string * float option) list;  (* headline key -> value *)
}

(* ------------------------------------------------------------------ *)
(* Headline extraction                                                 *)
(* ------------------------------------------------------------------ *)

let find_mean (doc : Bench_json.doc) ~experiment ~label =
  List.find_opt (fun (e : Bench_json.experiment) -> e.e_id = experiment) doc.experiments
  |> Option.map (fun (e : Bench_json.experiment) -> e.e_rows)
  |> Option.value ~default:[]
  |> List.find_opt (fun (r : Bench_json.row) -> r.r_label = label)
  |> Option.map (fun (r : Bench_json.row) -> r.r_mean)

(* Least-squares slope (us per assertion) over the E9 assertion-count
   sweep; the section-5 "cost grows with policy complexity" number. *)
let slope_over doc labels =
  let points =
    List.filter_map
      (fun (x, label) ->
        Option.map (fun y -> (float_of_int x, y)) (find_mean doc ~experiment:"e9" ~label))
      labels
  in
  if List.length points < List.length labels then None
  else
    let n = float_of_int (List.length points) in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
    let denom = (n *. sxx) -. (sx *. sx) in
    if denom = 0.0 then None else Some (((n *. sxy) -. (sx *. sy)) /. denom)

(* key, short column header for the rendered table, extractor *)
let headlines =
  [
    ( "e1_test_incr_us",
      "e1 us",
      fun doc -> find_mean doc ~experiment:"e1" ~label:"SMOD(test-incr)" );
    ( "e9_slope_us",
      "e9 us/asrt",
      fun doc ->
        slope_over doc [ (1, "keynote-1"); (4, "keynote-4"); (16, "keynote-16") ] );
    ( "e9_slope_compiled_us",
      "e9c us/asrt",
      fun doc ->
        slope_over doc
          [ (1, "keynote-1 compiled"); (4, "keynote-4 compiled"); (16, "keynote-16 compiled") ]
    );
    ( "e16_attach_us",
      "e16 us",
      fun doc -> find_mean doc ~experiment:"e16" ~label:"pooled attach (smodd, warm)" );
    ( "e18_ring_b16_us",
      "e18 us",
      fun doc -> find_mean doc ~experiment:"e18" ~label:"ring batch 16 (mean)" );
    ( "e19_compiled_kn16_us",
      "e19 us",
      fun doc -> find_mean doc ~experiment:"e19" ~label:"msgq kn-16 compiled (mean)" );
    ( "e20_ring_k8_kcalls",
      "e20 kc/s",
      fun doc -> find_mean doc ~experiment:"e20" ~label:"ring K=8 aggregate (kcalls/s)" );
    ( "e21_ring_k8_storm_kcalls",
      "e21 kc/s",
      fun doc ->
        find_mean doc ~experiment:"e21" ~label:"ring K=8 lazy storm aggregate (kcalls/s)" );
    ( "e22_poller_traps_per_call",
      "e22 t/c",
      fun doc -> find_mean doc ~experiment:"e22" ~label:"poller S=64 traps/call" );
    ( "e24_fused_batch64_kn16",
      "e24 us",
      fun doc -> find_mean doc ~experiment:"e24" ~label:"ring b64 kn-16 fused (mean)" );
    ( "e25_vector_batch64_kn16",
      "e25 us",
      fun doc -> find_mean doc ~experiment:"e25" ~label:"ring b64 kn-16 vectorized (mean)" );
  ]

let headline_keys = List.map (fun (k, _, _) -> k) headlines

let entry_of_doc ~snapshot (doc : Bench_json.doc) =
  let date, commit, jobs =
    match doc.meta with
    | Some m -> (m.Bench_json.mt_date, m.mt_commit, m.mt_jobs)
    | None -> ("undated", "nogit", 1)
  in
  {
    t_date = date;
    t_commit = commit;
    t_mode = doc.mode;
    t_jobs = jobs;
    t_snapshot = snapshot;
    t_values = List.map (fun (k, _, extract) -> (k, extract doc)) headlines;
  }

(* ------------------------------------------------------------------ *)
(* Serialisation                                                       *)
(* ------------------------------------------------------------------ *)

let json_of_entry e =
  Json.Obj
    [
      ("date", Json.String e.t_date);
      ("commit", Json.String e.t_commit);
      ("mode", Json.String e.t_mode);
      ("jobs", Json.Int e.t_jobs);
      ("snapshot", Json.String e.t_snapshot);
      ( "values",
        Json.Obj
          (List.map
             (fun (k, v) ->
               (k, match v with Some f -> Json.Float f | None -> Json.Null))
             e.t_values) );
    ]

let entry_of_json j =
  {
    t_date = Json.get_string (Json.member_exn "date" j);
    t_commit = Json.get_string (Json.member_exn "commit" j);
    t_mode = Json.get_string (Json.member_exn "mode" j);
    t_jobs = Json.get_int (Json.member_exn "jobs" j);
    t_snapshot = Json.get_string (Json.member_exn "snapshot" j);
    t_values =
      (match Json.member_exn "values" j with
      | Json.Obj fields ->
          List.map
            (fun (k, v) ->
              (k, match v with Json.Null -> None | v -> Some (Json.get_float v)))
            fields
      | _ -> raise (Json.Parse_error "trajectory: values must be an object"));
  }

let to_json entries =
  Json.Obj
    [
      ("schema", Json.String schema_name);
      ("schema_version", Json.Int schema_version);
      ("entries", Json.Arr (List.map json_of_entry entries));
    ]

let to_string entries = Json.to_string (to_json entries) ^ "\n"

let of_json j =
  (match Json.member "schema" j with
  | Some (Json.String s) when s = schema_name -> ()
  | _ -> raise (Json.Parse_error "not a smod-bench-trajectory document"));
  (match Json.get_int (Json.member_exn "schema_version" j) with
  | v when v = schema_version -> ()
  | v ->
      raise
        (Json.Parse_error
           (Printf.sprintf "trajectory schema_version %d unsupported (want %d)" v
              schema_version)));
  List.map entry_of_json (Json.to_list (Json.member_exn "entries" j))

let of_string s = of_json (Json.of_string s)

(* ------------------------------------------------------------------ *)
(* History                                                             *)
(* ------------------------------------------------------------------ *)

(* Dated snapshot file names sort chronologically, so (date, commit,
   snapshot) gives a stable history order even with several captures on
   one day. *)
let sorted entries =
  List.sort
    (fun a b -> compare (a.t_date, a.t_commit, a.t_snapshot) (b.t_date, b.t_commit, b.t_snapshot))
    entries

let append entries e =
  let dup x = x.t_date = e.t_date && x.t_commit = e.t_commit && x.t_snapshot = e.t_snapshot in
  if List.exists dup entries then entries else sorted (entries @ [ e ])

let render entries =
  let t =
    Table.create
      ~aligns:
        ([ Table.Left; Table.Left; Table.Left; Table.Right ]
        @ List.map (fun _ -> Table.Right) headlines)
      ([ "date"; "commit"; "mode"; "jobs" ] @ List.map (fun (_, h, _) -> h) headlines)
  in
  List.iter
    (fun e ->
      Table.add_row t
        ([ e.t_date; e.t_commit; e.t_mode; string_of_int e.t_jobs ]
        @ List.map
            (fun k ->
              match List.assoc_opt k e.t_values with
              | Some (Some v) -> Printf.sprintf "%.4f" v
              | Some None | None -> "-")
            headline_keys))
    (sorted entries);
  Table.render t
