(* E22: the zero-trap data path — SQPOLL-style kernel poller + effects
   multiplexer — against the trap-per-batch ring baseline, as session
   count scales.

   Two modes over the same workload (every session submits [batches]
   ring batches of [batch] calls):

   - [Trap]: the PR-3 configuration — one [sys_smod_call_batch] trap per
     chunk stamps admission, one forked handle process serves each
     session.  Expected traps/call = 1/batch, flat in S.

   - [Poller]: the kernel poller sweeps every registered ring and stamps
     verdicts itself, and one mux daemon serves every session on a
     single domain via effects fibers.  The steady-state submit needs no
     trap; the only traps inside the measured window are doorbells after
     the poller parked (rare while work is flowing), so traps/call
     drops toward zero as S grows — while the poll-sweep cost stays
     honestly on the books, charged to the poller's timeline.

   Both metrics come from the same run: simulated wall time per call,
   and machine-wide [Machine.syscall_count] growth per call.  The count
   starts when the last session has armed its ring (a shared simulated
   barrier), so arm-time setup traps — find/start_session/obreak/
   ring_setup and the one arm-time doorbell — stay out of the
   steady-state figure, exactly like the warm-up convention of E1.

   Each (mode, S, trial) cell is an independent deterministic world, so
   the Runner can spread cells over domains. *)

module Machine = Smod_kern.Machine
module Sched = Smod_kern.Sched
module Clock = Smod_sim.Clock
module Stats = Smod_util.Stats
module Smod = Secmodule.Smod
module Stub = Secmodule.Stub

type mode = Trap | Poller

let mode_name = function Trap -> "trap" | Poller -> "poller"

type config = {
  trap_sessions : int list;
  poller_sessions : int list;
      (* the poller column reaches further: the whole point is that one
         domain multiplexes thousands of sessions *)
  batches : int;  (* ring batches per session *)
  batch : int;  (* calls per batch = ring slots *)
  trials : int;
}

let default_config =
  { trap_sessions = [ 1; 8; 64 ]; poller_sessions = [ 1; 8; 64; 1000 ]; batches = 4; batch = 16; trials = 2 }

type cell_result = { cr_us_per_call : float; cr_traps_per_call : float }

let run_cell ~mode ~sessions ~cfg ~trial =
  let seed = Int64.of_int (22_000 + (1009 * trial) + (7 * sessions) + match mode with Trap -> 0 | Poller -> 1) in
  let world = World.create ~seed ~with_rpc:false () in
  let machine = world.World.machine in
  let clock = Machine.clock machine in
  let smod = world.World.smod in
  (match mode with
  | Trap -> ()
  | Poller ->
      Smod.set_kernel_poller smod true;
      Smod.set_session_mux smod true);
  let total_calls = sessions * cfg.batches * cfg.batch in
  let barrier = Sched.waitq "e22-armed" in
  let ready = ref 0 in
  let t0 = ref 0.0 and traps0 = ref 0 in
  let t1 = ref 0.0 and traps1 = ref 0 in
  let finished = ref 0 in
  for i = 1 to sessions do
    World.spawn_seclibc_client world
      ~name:(Printf.sprintf "e22-%s-%d" (mode_name mode) i)
      (fun p conn ->
        ignore (Stub.arm_ring ~nslots:cfg.batch conn);
        incr ready;
        (* Barrier: steady state starts only once every ring is armed. *)
        if !ready = sessions then begin
          t0 := Clock.now_us clock;
          traps0 := Machine.syscall_count machine;
          ignore (Machine.wake machine barrier)
        end
        else Sched.wait_on barrier p.Smod_kern.Proc.pid;
        let argss = List.init cfg.batch (fun j -> [| j |]) in
        for _ = 1 to cfg.batches do
          ignore (Stub.call_batch conn ~func:"test_incr" argss)
        done;
        incr finished;
        if !finished = sessions then begin
          t1 := Clock.now_us clock;
          traps1 := Machine.syscall_count machine
        end)
  done;
  World.run world;
  {
    cr_us_per_call = (!t1 -. !t0) /. float_of_int total_calls;
    cr_traps_per_call = float_of_int (!traps1 - !traps0) /. float_of_int total_calls;
  }

let run ?(runner = Runner.sequential) ?(config = default_config) () =
  let cells =
    List.map (fun s -> (Trap, s)) config.trap_sessions
    @ List.map (fun s -> (Poller, s)) config.poller_sessions
  in
  let tasks =
    List.concat_map
      (fun cell -> List.init config.trials (fun trial -> (cell, trial)))
      cells
  in
  let results =
    Runner.map runner tasks (fun ((mode, sessions), trial) ->
        run_cell ~mode ~sessions ~cfg:config ~trial)
  in
  let per_cell = Hashtbl.create 16 in
  List.iter2
    (fun (cell, _) r ->
      let prev = Option.value (Hashtbl.find_opt per_cell cell) ~default:[] in
      Hashtbl.replace per_cell cell (r :: prev))
    tasks results;
  List.concat_map
    (fun cell ->
      let mode, sessions = cell in
      let rs = List.rev (Option.value (Hashtbl.find_opt per_cell cell) ~default:[]) in
      let us = Array.of_list (List.map (fun r -> r.cr_us_per_call) rs) in
      let traps = Array.of_list (List.map (fun r -> r.cr_traps_per_call) rs) in
      let name = mode_name mode in
      [
        Ablations.
          {
            label = Printf.sprintf "%s S=%d us/call" name sessions;
            mean_us = Stats.mean us;
            stdev_us = Stats.stdev us;
          };
        Ablations.
          {
            label = Printf.sprintf "%s S=%d traps/call" name sessions;
            mean_us = Stats.mean traps;
            stdev_us = Stats.stdev traps;
          };
      ])
    cells
