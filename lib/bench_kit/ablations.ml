module Machine = Smod_kern.Machine
module Proc = Smod_kern.Proc
module Clock = Smod_sim.Clock
module Ast = Smod_keynote.Ast
module Parse = Smod_keynote.Parse
open Secmodule

type entry = { label : string; mean_us : float; stdev_us : float }

let render ~title ?(unit_header = "microsec") entries =
  Trial.generic_table ~title ~header:[ "configuration"; unit_header; "stdev" ]
    (List.map
       (fun e -> [ e.label; Printf.sprintf "%.3f" e.mean_us; Printf.sprintf "%.4f" e.stdev_us ])
       entries)

let entry_of_row label (row : Trial.row) =
  { label; mean_us = row.Trial.mean_us; stdev_us = row.Trial.stdev_us }

(* ------------------------------------------------------------------ *)
(* E9: policy complexity                                               *)
(* ------------------------------------------------------------------ *)

let keynote_policy_with n =
  let assertions =
    List.init n (fun i ->
        Parse.assertion_of_string
          (Printf.sprintf
             "keynote-version: 2\n\
              authorizer: \"POLICY\"\n\
              licensees: \"client\"\n\
              conditions: module == \"seclibc\" && clause == %d -> \"allow\";\n"
             i))
  in
  (* Make the first clause actually match so access is granted. *)
  let assertions =
    Parse.assertion_of_string
      "keynote-version: 2\n\
       authorizer: \"POLICY\"\n\
       licensees: \"client\"\n\
       conditions: module == \"seclibc\" -> \"allow\";\n"
    :: assertions
  in
  Policy.Keynote
    { policy = assertions; levels = [| "deny"; "allow" |]; min_level = "allow"; attrs = [] }

let policy_ladder ~budget =
  [
    ("always-allow", Policy.Always_allow);
    ("session-lifetime", Policy.Session_lifetime);
    ("call-quota", Policy.Call_quota budget);
    ("rate-limit", Policy.Rate_limit { max_calls = budget; window_us = 1e12 });
    ("keynote-1", keynote_policy_with 0);
    ("keynote-4", keynote_policy_with 3);
    ("keynote-16", keynote_policy_with 15);
  ]

let measure_calls ?(compile = false) ~policy ~label ~calls ~trials () =
  let world = World.create ~policy ~with_rpc:false () in
  if compile then Smod.set_policy_compile world.World.smod true;
  let clock = Machine.clock world.World.machine in
  let result = ref None in
  World.spawn_seclibc_client world ~name:"ablation-client" (fun _p conn ->
      let spec = { Trial.name = label; calls_per_trial = calls; trials; warmup = 10 } in
      result :=
        Some
          (Trial.run ~clock spec (fun i ->
               ignore (Smod_libc.Seclibc.Client.test_incr conn i))));
  World.run world;
  match !result with Some r -> entry_of_row label r | None -> assert false

(* The interpreted ladder first (rows byte-compatible with earlier
   baselines), then the keynote rungs again with the compiled engine
   (PR 4): same policies, same worlds, only [Smod.set_policy_compile]
   flipped, so any difference is the engine. *)
let policy_ablation ?(calls = 2_000) ?(trials = 5) () =
  let budget = (calls * trials) + 100 in
  let ladder = policy_ladder ~budget in
  List.map (fun (label, policy) -> measure_calls ~policy ~label ~calls ~trials ()) ladder
  @ List.filter_map
      (fun (label, policy) ->
        match policy with
        | Policy.Keynote _ ->
            Some
              (measure_calls ~compile:true ~policy ~label:(label ^ " compiled") ~calls
                 ~trials ())
        | _ -> None)
      ladder

(* ------------------------------------------------------------------ *)
(* E10: shared stack vs copy-based marshaling                          *)
(* ------------------------------------------------------------------ *)

let marshal_ablation ?(calls = 1_000) ?(payload_sizes = [ 16; 256; 4096; 65536 ]) () =
  List.concat_map
    (fun size ->
      let world = World.create ~with_rpc:false () in
      let machine = world.World.machine in
      let clock = Machine.clock machine in
      let shared = ref None and copying = ref None in
      (* Copying dispatcher: an echo worker that returns the payload, the
         way an explicit-shared-window design must move argument data. *)
      let req_q = ref 0 and rep_q = ref 0 in
      ignore
        (Machine.spawn machine ~daemon:true ~name:"copy-echo" (fun p ->
             req_q := Machine.msgget machine p ~key:7001;
             rep_q := Machine.msgget machine p ~key:7002;
             let rec loop () =
               let _, payload = Machine.msgrcv machine p ~qid:!req_q ~mtype:1 in
               Machine.msgsnd machine p ~qid:!rep_q ~mtype:1 payload;
               loop ()
             in
             loop ()));
      World.spawn_seclibc_client world ~name:"marshal-client" (fun p conn ->
          (* Pointer-passing through SecModule: cost independent of size. *)
          let buf = Smod_libc.Seclibc.Client.malloc conn size in
          let spec name =
            { Trial.name; calls_per_trial = calls; trials = 5; warmup = 10 }
          in
          shared :=
            Some
              (Trial.run ~clock (spec "shared") (fun _ ->
                   ignore (Stub.call conn ~func:"test_incr" [| buf |])));
          (* Copy-based: the payload crosses the queue in both directions,
             chunked through the fixed message-size window as any explicit
             shared-memory design must (§3). *)
          let chunk = 4096 in
          let chunks =
            List.init ((size + chunk - 1) / chunk) (fun i ->
                Bytes.make (min chunk (size - (i * chunk))) 'x')
          in
          copying :=
            Some
              (Trial.run ~clock (spec "copying") (fun _ ->
                   (* A copy-based SecModule still pays the per-call trap,
                      credential check and stub work — charge the same
                      fixed costs so the two designs differ only in how
                      argument data travels. *)
                   Clock.charge clock Smod_sim.Cost_model.Trap_enter;
                   Clock.charge clock Smod_sim.Cost_model.Cred_check;
                   Clock.charge clock Smod_sim.Cost_model.Policy_always_allow;
                   Clock.charge clock (Smod_sim.Cost_model.Stub_push_args 1);
                   Clock.charge clock Smod_sim.Cost_model.Stub_receive;
                   Clock.charge clock Smod_sim.Cost_model.Stub_return;
                   List.iter
                     (fun piece ->
                       Machine.msgsnd machine p ~qid:!req_q ~mtype:1 piece;
                       ignore (Machine.msgrcv machine p ~qid:!rep_q ~mtype:1))
                     chunks;
                   Clock.charge clock Smod_sim.Cost_model.Trap_exit)));
      World.run world;
      match (!shared, !copying) with
      | Some s, Some c ->
          [
            entry_of_row (Printf.sprintf "shared-stack %6d B" size) s;
            entry_of_row (Printf.sprintf "copy-marshal %6d B" size) c;
          ]
      | _ -> assert false)
    payload_sizes

(* ------------------------------------------------------------------ *)
(* E11: encrypted vs unmap-only protection                             *)
(* ------------------------------------------------------------------ *)

let padded_module ~text_size =
  let b = Smod_modfmt.Smof.Builder.create ~name:"padded" ~version:1 in
  ignore
    (Smod_modfmt.Smof.Builder.add_function b ~name:"test_incr"
       ~code:(Smod_svm.Asm.assemble "loadarg 0\npush 1\nadd\nret\n")
       ());
  ignore
    (Smod_modfmt.Smof.Builder.add_native_function b ~name:"bulk" ~native:"bulk"
       ~size_hint:text_size ());
  Smod_modfmt.Smof.Builder.finish b

let measure_establishment ~protection ~text_size ~trials =
  let samples =
    Array.init trials (fun i ->
        let machine = Machine.create ~seed:(Int64.of_int (1000 + i)) () in
        let smod = Smod.install machine () in
        let entry =
          Toolchain.package smod ~image:(padded_module ~text_size) ~protection ()
        in
        ignore entry;
        let clock = Machine.clock machine in
        let elapsed = ref 0.0 in
        ignore
          (Machine.spawn machine ~name:"estab-client" (fun p ->
               let t0 = Clock.now_cycles clock in
               let conn =
                 Stub.connect smod p ~module_name:"padded" ~version:1
                   ~credential:(Credential.make ~principal:"client" ())
               in
               elapsed := Clock.elapsed_us clock ~since:t0;
               Stub.close conn));
        Machine.run machine;
        !elapsed)
  in
  {
    label =
      Printf.sprintf "%s %7d B text"
        (match protection with Registry.Encrypted -> "encrypted" | Registry.Unmap_only -> "unmap-only")
        text_size;
    mean_us = Smod_util.Stats.mean samples;
    stdev_us = Smod_util.Stats.stdev samples;
  }

let protection_ablation ?(text_sizes = [ 4096; 65536; 262144 ]) ?(trials = 5) () =
  List.concat_map
    (fun text_size ->
      [
        measure_establishment ~protection:Registry.Unmap_only ~text_size ~trials;
        measure_establishment ~protection:Registry.Encrypted ~text_size ~trials;
      ])
    text_sizes

(* ------------------------------------------------------------------ *)
(* E12: shared handle bottleneck                                       *)
(* ------------------------------------------------------------------ *)

let service_charge machine =
  (* Stand-in for the handle executing the function: stub receive, a few
     VM instructions, stub return. *)
  let clock = Machine.clock machine in
  Clock.charge clock Smod_sim.Cost_model.Stub_receive;
  Clock.charge_n clock Smod_sim.Cost_model.Svm_instr 4;
  Clock.charge clock Smod_sim.Cost_model.Stub_return

(* A single simulated CPU serialises all service work, so per-call latency
   cannot distinguish the two designs; what can is the request queue a
   shared handle accumulates.  We record, at every service, how many
   requests are still waiting behind the one being served: a private
   handle's queue is empty, a shared handle's grows with the client
   count — the many-to-one bottleneck of §4.3. *)
let run_queueing ~machine ~shared ~k ~calls_per_client =
  let depths = ref [] in
  (* Request payload carries the reply qid in its first 4 bytes. *)
  let workers = if shared then 1 else k in
  let req_qids = Array.make workers 0 in
  for w = 0 to workers - 1 do
    ignore
      (Machine.spawn machine ~daemon:true ~name:(Printf.sprintf "worker-%d" w) (fun p ->
           req_qids.(w) <- Machine.msgget machine p ~key:(8000 + w);
           let rec loop () =
             let _, payload = Machine.msgrcv machine p ~qid:req_qids.(w) ~mtype:1 in
             depths := float_of_int (Machine.msgq_depth machine ~qid:req_qids.(w)) :: !depths;
             service_charge machine;
             let rep_qid = Wire.reply_of_bytes payload in
             Machine.msgsnd machine p ~qid:rep_qid.Wire.status ~mtype:1 (Bytes.create 8);
             loop ()
           in
           loop ()))
  done;
  for c = 0 to k - 1 do
    ignore
      (Machine.spawn machine ~name:(Printf.sprintf "qclient-%d" c) (fun p ->
           let rep_qid = Machine.msgget machine p ~key:(9000 + c) in
           let worker = if shared then 0 else c in
           let req = Wire.reply_to_bytes { Wire.status = rep_qid; retval = 0 } in
           for _ = 1 to calls_per_client do
             Machine.msgsnd machine p ~qid:req_qids.(worker) ~mtype:1 req;
             ignore (Machine.msgrcv machine p ~qid:rep_qid ~mtype:1)
           done))
  done;
  Machine.run machine;
  Array.of_list !depths

let handle_sharing ?(clients = [ 1; 2; 4; 8 ]) ?(calls_per_client = 300) () =
  List.concat_map
    (fun k ->
      let make shared =
        let machine = Machine.create () in
        let depths = run_queueing ~machine ~shared ~k ~calls_per_client in
        {
          label =
            Printf.sprintf "%d clients, %s" k (if shared then "shared handle" else "own handles");
          mean_us = Smod_util.Stats.mean depths;
          stdev_us = Smod_util.Stats.stdev depths;
        }
      in
      [ make false; make true ])
    clients

(* ------------------------------------------------------------------ *)
(* E14: the §5 "reduce redundant checks" future-work fast path          *)
(* ------------------------------------------------------------------ *)

let fast_path ?(calls = 2_000) ?(trials = 5) () =
  List.map
    (fun (label, enabled) ->
      let world = World.create ~with_rpc:false () in
      Smod.set_call_fast_path world.World.smod enabled;
      let clock = Machine.clock world.World.machine in
      let result = ref None in
      World.spawn_seclibc_client world ~name:"fastpath-client" (fun _p conn ->
          let spec = { Trial.name = label; calls_per_trial = calls; trials; warmup = 10 } in
          result :=
            Some
              (Trial.run ~clock spec (fun i ->
                   ignore (Smod_libc.Seclibc.Client.test_incr conn i))));
      World.run world;
      match !result with Some r -> entry_of_row label r | None -> assert false)
    [ ("prototype (per-call recheck)", false); ("fast path (checks hoisted)", true) ]

(* ------------------------------------------------------------------ *)
(* E15: syscall-interposition overhead (section 2 comparison)           *)
(* ------------------------------------------------------------------ *)

module Systrace = Smod_systrace.Systrace

let systrace_policy =
  "policy: p\n\
   native-msgsnd: permit\n\
   native-msgrcv: permit\n\
   native-obreak: permit\n\
   native-getpid: permit\n\
   default: deny\n"

(* The paper's section-2 alternative: a syscall-level monitor pays a
   linear rule scan on every trap.  Time getpid() bare and under a
   systrace policy whose getpid rule sits last in a 4-rule list, per
   trial, so the entries carry a real stdev like every other table. *)
let systrace_overhead ?(calls = 1_000) ?(trials = 5) () =
  let measure ~attach ~label =
    let samples =
      Array.init trials (fun i ->
          let machine = Machine.create ~seed:(Int64.of_int (2000 + i)) ~jitter:0.0 () in
          let tracer = Systrace.install machine in
          let cost = ref 0.0 in
          ignore
            (Machine.spawn machine ~name:"systrace-app" (fun p ->
                 if attach then
                   Systrace.attach tracer ~pid:p.Proc.pid
                     (Systrace.parse_policy systrace_policy);
                 let clock = Machine.clock machine in
                 let t0 = Clock.now_cycles clock in
                 for _ = 1 to calls do
                   ignore (Machine.sys_getpid machine p)
                 done;
                 cost := Clock.elapsed_us clock ~since:t0 /. float_of_int calls));
          Machine.run machine;
          !cost)
    in
    { label; mean_us = Smod_util.Stats.mean samples; stdev_us = Smod_util.Stats.stdev samples }
  in
  [
    measure ~attach:false ~label:"getpid bare";
    measure ~attach:true ~label:"getpid under systrace (4-rule scan)";
  ]

(* ------------------------------------------------------------------ *)
(* E16: smodd session pooling (lib/pool)                               *)
(* ------------------------------------------------------------------ *)

(* One module, so the per-module cap is the global cap; queue deep enough
   that 64 steady-state clients never see EAGAIN. *)
let pool_config =
  {
    Smod_pool.Smodd.default_config with
    max_handles_per_module = 16;
    max_total_handles = 16;
    max_queue_depth = 128;
  }

(* Establishment latency, cold fork vs warm pooled attach.  The pooled
   world gets exactly one handle so every timed session reuses it; the
   warmup connect pays the one-off fork. *)
let measure_start_session ~pooled ~sessions ~trials =
  let samples =
    Array.init trials (fun i ->
        let pool =
          if pooled then
            Some { pool_config with max_handles_per_module = 1; max_total_handles = 1 }
          else None
        in
        let world = World.create ~seed:(Int64.of_int (3000 + i)) ?pool ~with_rpc:false () in
        let clock = Machine.clock world.World.machine in
        let mean = ref 0.0 in
        ignore
          (Machine.spawn world.World.machine ~name:"pool-estab-client" (fun p ->
               let credential = Credential.make ~principal:"client" () in
               let connect () =
                 Stub.connect world.World.smod p ~module_name:Smod_libc.Seclibc.module_name
                   ~version:Smod_libc.Seclibc.version ~credential
               in
               Stub.close (connect ());
               let total = ref 0.0 in
               for _ = 1 to sessions do
                 let t0 = Clock.now_cycles clock in
                 let conn = connect () in
                 total := !total +. Clock.elapsed_us clock ~since:t0;
                 Stub.close conn
               done;
               mean := !total /. float_of_int sessions));
        World.run world;
        !mean)
  in
  {
    label = (if pooled then "pooled attach (smodd, warm)" else "cold fork per session");
    mean_us = Smod_util.Stats.mean samples;
    stdev_us = Smod_util.Stats.stdev samples;
  }

(* Steady state: K clients each run a connect / calls / close lifetime;
   kcalls/s over the whole run.  Beyond 16 clients smodd multiplexes the
   population through the admission queue. *)
let measure_throughput ~pooled ~k ~calls ~trials =
  let samples =
    Array.init trials (fun i ->
        let pool = if pooled then Some pool_config else None in
        let world =
          World.create ~seed:(Int64.of_int (4000 + (17 * i))) ?pool ~with_rpc:false ()
        in
        let clock = Machine.clock world.World.machine in
        for c = 0 to k - 1 do
          World.spawn_seclibc_client world
            ~name:(Printf.sprintf "pool-tp-%d" c)
            (fun _p conn ->
              for j = 1 to calls do
                ignore (Smod_libc.Seclibc.Client.test_incr conn j)
              done)
        done;
        World.run world;
        float_of_int (k * calls) *. 1_000.0 /. Clock.now_us clock)
  in
  {
    label = Printf.sprintf "%s %2d clients (kcalls/s)" (if pooled then "pooled" else "cold  ") k;
    mean_us = Smod_util.Stats.mean samples;
    stdev_us = Smod_util.Stats.stdev samples;
  }

let pooling ?(sessions = 20) ?(calls = 150) ?(clients = [ 1; 8; 64 ]) ?(trials = 3) () =
  [
    measure_start_session ~pooled:false ~sessions ~trials;
    measure_start_session ~pooled:true ~sessions ~trials;
  ]
  @ List.concat_map
      (fun k ->
        [
          measure_throughput ~pooled:false ~k ~calls ~trials;
          measure_throughput ~pooled:true ~k ~calls ~trials;
        ])
      clients

(* ------------------------------------------------------------------ *)
(* E18: shared-memory dispatch rings vs msgq transport                 *)
(* ------------------------------------------------------------------ *)

(* Per-call latency of the same test-incr workload over the two
   transports, as a function of batch size.  The msgq rows issue the
   batch as back-to-back legacy calls (each paying its own trap, two
   message-queue crossings and a policy evaluation); the ring rows
   submit the batch through the shared-memory ring (one trap, one
   policy evaluation and at most one handle wakeup per batch).  At
   batch 1 the ring still pays its own round trip, so it must merely
   not lose; the amortisation shows from batch 4 up.  Mean and p99
   rows are both recorded — the ring's tail is what the doorbell
   fallback and spin budget are for. *)
let ring_dispatch ?(batches = [ 1; 4; 16; 64 ]) ?(rounds = 200) ?(trials = 5) () =
  let measure ~use_ring ~batch =
    let means = Array.make trials 0.0 and p99s = Array.make trials 0.0 in
    for t = 0 to trials - 1 do
      let world =
        World.create ~seed:(Int64.of_int (5000 + (13 * t))) ~with_rpc:false ()
      in
      let clock = Machine.clock world.World.machine in
      World.spawn_seclibc_client world ~name:"ring-bench" (fun _p conn ->
          if use_ring then ignore (Stub.arm_ring conn);
          let argss = List.init batch (fun i -> [| i |]) in
          let do_batch () =
            if use_ring then ignore (Stub.call_batch conn ~func:"test_incr" argss)
            else List.iter (fun args -> ignore (Stub.call conn ~func:"test_incr" args)) argss
          in
          (* Warm the session (symbol lookup, ring registration). *)
          do_batch ();
          let samples = Array.make rounds 0.0 in
          for r = 0 to rounds - 1 do
            let t0 = Clock.now_cycles clock in
            do_batch ();
            samples.(r) <- Clock.elapsed_us clock ~since:t0 /. float_of_int batch
          done;
          means.(t) <- Smod_util.Stats.mean samples;
          p99s.(t) <- Smod_util.Stats.percentile samples 99.0);
      World.run world
    done;
    (means, p99s)
  in
  List.concat_map
    (fun batch ->
      List.concat_map
        (fun (transport, use_ring) ->
          let means, p99s = measure ~use_ring ~batch in
          [
            {
              label = Printf.sprintf "%s batch %2d (mean)" transport batch;
              mean_us = Smod_util.Stats.mean means;
              stdev_us = Smod_util.Stats.stdev means;
            };
            {
              label = Printf.sprintf "%s batch %2d (p99)" transport batch;
              mean_us = Smod_util.Stats.mean p99s;
              stdev_us = Smod_util.Stats.stdev p99s;
            };
          ])
        [ ("msgq", false); ("ring", true) ])
    batches

(* ------------------------------------------------------------------ *)
(* E19: compiled decision programs vs interpreted KeyNote              *)
(* ------------------------------------------------------------------ *)

(* The E9 ladder again, but with the matching rung reading a volatile
   attribute (calls_so_far), so the verdict is not a pure function of its
   inputs: smodd's decision cache cannot memoise it and the batch path
   must evaluate policy per slot.  This is the worst case for the
   interpreter — a full assertion walk per call — and exactly where the
   compiled engine's flat opcode program earns its keep.  The bound is
   effectively infinite, so every call is allowed and the establishment
   check (where calls_so_far is unset and compares lexicographically)
   passes too. *)
let volatile_keynote_policy_with n =
  let assertions =
    List.init n (fun i ->
        Parse.assertion_of_string
          (Printf.sprintf
             "keynote-version: 2\n\
              authorizer: \"POLICY\"\n\
              licensees: \"client\"\n\
              conditions: module == \"seclibc\" && clause == %d -> \"allow\";\n"
             i))
  in
  let assertions =
    Parse.assertion_of_string
      "keynote-version: 2\n\
       authorizer: \"POLICY\"\n\
       licensees: \"client\"\n\
       conditions: module == \"seclibc\" && calls_so_far < 1000000000 -> \"allow\";\n"
    :: assertions
  in
  Policy.Keynote
    { policy = assertions; levels = [| "deny"; "allow" |]; min_level = "allow"; attrs = [] }

(* Per-call latency by assertion count, over both transports and both
   engines.  The msgq rows issue plain calls; the ring rows submit
   [batch]-slot batches (amortising trap and wakeup, but still one
   policy evaluation per slot — the volatile guard forbids anything
   less).  Interpreted rows pay the full KeyNote walk per slot; compiled
   rows pay the session-memo check plus the opcode program.  Mean and
   p99 per configuration, like E18. *)
let policy_compile_dispatch ?(assertions = [ 1; 4; 16; 64 ]) ?(batch = 16) ?(rounds = 100)
    ?(trials = 5) () =
  let measure ~use_ring ~compile ~n =
    let means = Array.make trials 0.0 and p99s = Array.make trials 0.0 in
    for t = 0 to trials - 1 do
      let world =
        World.create
          ~seed:(Int64.of_int (6000 + (13 * t)))
          ~policy:(volatile_keynote_policy_with (n - 1))
          ~with_rpc:false ()
      in
      Smod.set_policy_compile world.World.smod compile;
      let clock = Machine.clock world.World.machine in
      World.spawn_seclibc_client world ~name:"compile-bench" (fun _p conn ->
          if use_ring then ignore (Stub.arm_ring conn);
          let argss = List.init batch (fun i -> [| i |]) in
          let do_batch () =
            if use_ring then ignore (Stub.call_batch conn ~func:"test_incr" argss)
            else List.iter (fun args -> ignore (Stub.call conn ~func:"test_incr" args)) argss
          in
          (* Warm the session: symbol lookup, ring registration and — on
             the compiled rows — the one-off compilation. *)
          do_batch ();
          let samples = Array.make rounds 0.0 in
          for r = 0 to rounds - 1 do
            let t0 = Clock.now_cycles clock in
            do_batch ();
            samples.(r) <- Clock.elapsed_us clock ~since:t0 /. float_of_int batch
          done;
          means.(t) <- Smod_util.Stats.mean samples;
          p99s.(t) <- Smod_util.Stats.percentile samples 99.0);
      World.run world
    done;
    (means, p99s)
  in
  List.concat_map
    (fun n ->
      List.concat_map
        (fun (transport, use_ring) ->
          List.concat_map
            (fun (engine, compile) ->
              let means, p99s = measure ~use_ring ~compile ~n in
              [
                {
                  label = Printf.sprintf "%s kn-%2d %-8s (mean)" transport n engine;
                  mean_us = Smod_util.Stats.mean means;
                  stdev_us = Smod_util.Stats.stdev means;
                };
                {
                  label = Printf.sprintf "%s kn-%2d %-8s (p99)" transport n engine;
                  mean_us = Smod_util.Stats.mean p99s;
                  stdev_us = Smod_util.Stats.stdev p99s;
                };
              ])
            [ ("interp", false); ("compiled", true) ])
        [ ("msgq", false); ("ring", true) ])
    assertions

(* ------------------------------------------------------------------ *)
(* E13 cost: TOCTOU mitigations (implementation)                       *)
(* ------------------------------------------------------------------ *)

let toctou_cost ?(calls = 1_000) ?(trials = 5) () =
  List.map
    (fun (label, mitigation) ->
      let world = World.create ~with_rpc:false () in
      Smod.set_toctou_mitigation world.World.smod mitigation;
      let clock = Machine.clock world.World.machine in
      let result = ref None in
      World.spawn_seclibc_client world ~name:"toctou-client" (fun _p conn ->
          let spec = { Trial.name = label; calls_per_trial = calls; trials; warmup = 10 } in
          result :=
            Some
              (Trial.run ~clock spec (fun i ->
                   ignore (Smod_libc.Seclibc.Client.test_incr conn i))));
      World.run world;
      match !result with Some r -> entry_of_row label r | None -> assert false)
    [
      ("no mitigation", Smod.No_mitigation);
      ("unmap during call", Smod.Unmap_during_call);
      ("dequeue client threads", Smod.Dequeue_client_threads);
    ]
