module Machine = Smod_kern.Machine
module Proc = Smod_kern.Proc
module Clock = Smod_sim.Clock
module Stats = Smod_util.Stats
module Ast = Smod_keynote.Ast
module Parse = Smod_keynote.Parse
open Secmodule

type entry = { label : string; mean_us : float; stdev_us : float }

let render ~title ?(unit_header = "microsec") entries =
  Trial.generic_table ~title ~header:[ "configuration"; unit_header; "stdev" ]
    (List.map
       (fun e -> [ e.label; Printf.sprintf "%.3f" e.mean_us; Printf.sprintf "%.4f" e.stdev_us ])
       entries)

let entry_of_means label samples =
  { label; mean_us = Stats.mean samples; stdev_us = Stats.stdev samples }

(* Decompose "[trials] trials of each configuration" into a flat list of
   independent (configuration, trial) tasks, run them over [runner], and
   hand back each configuration's per-trial samples in configuration
   order.  Every task builds a private world from a seed derived from its
   own coordinates, so results are identical for any job count. *)
let map_trials runner ~trials configs measure =
  let configs = Array.of_list configs in
  let tasks =
    List.concat
      (List.init (Array.length configs) (fun ci -> List.init trials (fun t -> (ci, t))))
  in
  let results =
    Array.of_list (Runner.map runner tasks (fun (ci, t) -> measure configs.(ci) ~trial:t))
  in
  List.init (Array.length configs) (fun ci ->
      (configs.(ci), Array.init trials (fun t -> results.((ci * trials) + t))))

(* One trial of the standard test-incr workload in a fresh world. *)
let test_incr_trial ?(setup = fun (_ : World.t) -> ()) ?policy ~label ~calls ~trials ~seed
    ~trial () =
  let world = World.create ~seed:(Int64.of_int seed) ?policy ~with_rpc:false () in
  setup world;
  let clock = Machine.clock world.World.machine in
  let result = ref Float.nan in
  World.spawn_seclibc_client world ~name:"ablation-client" (fun _p conn ->
      let spec = { Trial.name = label; calls_per_trial = calls; trials; warmup = 10 } in
      result :=
        Trial.run_one ~clock ~trial spec (fun i ->
            ignore (Smod_libc.Seclibc.Client.test_incr conn i)));
  World.run world;
  !result

(* ------------------------------------------------------------------ *)
(* E9: policy complexity                                               *)
(* ------------------------------------------------------------------ *)

let keynote_policy_with n =
  let assertions =
    List.init n (fun i ->
        Parse.assertion_of_string
          (Printf.sprintf
             "keynote-version: 2\n\
              authorizer: \"POLICY\"\n\
              licensees: \"client\"\n\
              conditions: module == \"seclibc\" && clause == %d -> \"allow\";\n"
             i))
  in
  (* Make the first clause actually match so access is granted. *)
  let assertions =
    Parse.assertion_of_string
      "keynote-version: 2\n\
       authorizer: \"POLICY\"\n\
       licensees: \"client\"\n\
       conditions: module == \"seclibc\" -> \"allow\";\n"
    :: assertions
  in
  Policy.Keynote
    { policy = assertions; levels = [| "deny"; "allow" |]; min_level = "allow"; attrs = [] }

let policy_ladder ~budget =
  [
    ("always-allow", Policy.Always_allow);
    ("session-lifetime", Policy.Session_lifetime);
    ("call-quota", Policy.Call_quota budget);
    ("rate-limit", Policy.Rate_limit { max_calls = budget; window_us = 1e12 });
    ("keynote-1", keynote_policy_with 0);
    ("keynote-4", keynote_policy_with 3);
    ("keynote-16", keynote_policy_with 15);
  ]

(* The interpreted ladder first (row order unchanged from earlier
   baselines), then the keynote rungs again with the compiled engine
   (PR 4): same policies, same world seeds, only [Smod.set_policy_compile]
   flipped, so any difference is the engine. *)
let policy_ablation ?(runner = Runner.sequential) ?(calls = 2_000) ?(trials = 5) () =
  let budget = (calls * trials) + 100 in
  let ladder = policy_ladder ~budget in
  let configs =
    List.map (fun (label, policy) -> (label, policy, false)) ladder
    @ List.filter_map
        (fun (label, policy) ->
          match policy with
          | Policy.Keynote _ -> Some (label ^ " compiled", policy, true)
          | _ -> None)
        ladder
  in
  map_trials runner ~trials configs (fun (label, policy, compile) ~trial ->
      test_incr_trial
        ~setup:(fun w -> if compile then Smod.set_policy_compile w.World.smod true)
        ~policy ~label ~calls ~trials ~seed:(7000 + trial) ~trial ())
  |> List.map (fun ((label, _, _), samples) -> entry_of_means label samples)

(* ------------------------------------------------------------------ *)
(* E10: shared stack vs copy-based marshaling                          *)
(* ------------------------------------------------------------------ *)

(* One trial measuring both designs in the same world: pointer-passing
   through SecModule, then the payload copied through the queue in both
   directions, chunked through the fixed message-size window as any
   explicit shared-memory design must (§3). *)
let marshal_trial ~calls ~trials ~size ~trial =
  let world = World.create ~seed:(Int64.of_int (7100 + (17 * trial))) ~with_rpc:false () in
  let machine = world.World.machine in
  let clock = Machine.clock machine in
  let shared = ref Float.nan and copying = ref Float.nan in
  (* Copying dispatcher: an echo worker that returns the payload, the way
     an explicit-shared-window design must move argument data. *)
  let req_q = ref 0 and rep_q = ref 0 in
  ignore
    (Machine.spawn machine ~daemon:true ~name:"copy-echo" (fun p ->
         req_q := Machine.msgget machine p ~key:7001;
         rep_q := Machine.msgget machine p ~key:7002;
         let rec loop () =
           let _, payload = Machine.msgrcv machine p ~qid:!req_q ~mtype:1 in
           Machine.msgsnd machine p ~qid:!rep_q ~mtype:1 payload;
           loop ()
         in
         loop ()));
  World.spawn_seclibc_client world ~name:"marshal-client" (fun p conn ->
      (* Pointer-passing through SecModule: cost independent of size. *)
      let buf = Smod_libc.Seclibc.Client.malloc conn size in
      let spec name = { Trial.name; calls_per_trial = calls; trials; warmup = 10 } in
      shared :=
        Trial.run_one ~clock ~trial (spec "shared") (fun _ ->
            ignore (Stub.call conn ~func:"test_incr" [| buf |]));
      let chunk = 4096 in
      let chunks =
        List.init ((size + chunk - 1) / chunk) (fun i ->
            Bytes.make (min chunk (size - (i * chunk))) 'x')
      in
      copying :=
        Trial.run_one ~clock ~trial (spec "copying") (fun _ ->
            (* A copy-based SecModule still pays the per-call trap,
               credential check and stub work — charge the same fixed
               costs so the two designs differ only in how argument data
               travels. *)
            Clock.charge clock Smod_sim.Cost_model.Trap_enter;
            Clock.charge clock Smod_sim.Cost_model.Cred_check;
            Clock.charge clock Smod_sim.Cost_model.Policy_always_allow;
            Clock.charge clock (Smod_sim.Cost_model.Stub_push_args 1);
            Clock.charge clock Smod_sim.Cost_model.Stub_receive;
            Clock.charge clock Smod_sim.Cost_model.Stub_return;
            List.iter
              (fun piece ->
                Machine.msgsnd machine p ~qid:!req_q ~mtype:1 piece;
                ignore (Machine.msgrcv machine p ~qid:!rep_q ~mtype:1))
              chunks;
            Clock.charge clock Smod_sim.Cost_model.Trap_exit));
  World.run world;
  (!shared, !copying)

let marshal_ablation ?(runner = Runner.sequential) ?(calls = 1_000)
    ?(payload_sizes = [ 16; 256; 4096; 65536 ]) () =
  let trials = 5 in
  map_trials runner ~trials payload_sizes (fun size ~trial ->
      marshal_trial ~calls ~trials ~size ~trial)
  |> List.concat_map (fun (size, pairs) ->
         [
           entry_of_means (Printf.sprintf "shared-stack %6d B" size) (Array.map fst pairs);
           entry_of_means (Printf.sprintf "copy-marshal %6d B" size) (Array.map snd pairs);
         ])

(* ------------------------------------------------------------------ *)
(* E11: encrypted vs unmap-only protection                             *)
(* ------------------------------------------------------------------ *)

let padded_module ~text_size =
  let b = Smod_modfmt.Smof.Builder.create ~name:"padded" ~version:1 in
  ignore
    (Smod_modfmt.Smof.Builder.add_function b ~name:"test_incr"
       ~code:(Smod_svm.Asm.assemble "loadarg 0\npush 1\nadd\nret\n")
       ());
  ignore
    (Smod_modfmt.Smof.Builder.add_native_function b ~name:"bulk" ~native:"bulk"
       ~size_hint:text_size ());
  Smod_modfmt.Smof.Builder.finish b

let establishment_trial ~protection ~text_size ~trial =
  let machine = Machine.create ~seed:(Int64.of_int (1000 + trial)) () in
  let smod = Smod.install machine () in
  let entry = Toolchain.package smod ~image:(padded_module ~text_size) ~protection () in
  ignore entry;
  let clock = Machine.clock machine in
  let elapsed = ref 0.0 in
  ignore
    (Machine.spawn machine ~name:"estab-client" (fun p ->
         let t0 = Clock.now_cycles clock in
         let conn =
           Stub.connect smod p ~module_name:"padded" ~version:1
             ~credential:(Credential.make ~principal:"client" ())
         in
         elapsed := Clock.elapsed_us clock ~since:t0;
         Stub.close conn));
  Machine.run machine;
  !elapsed

let protection_label protection text_size =
  Printf.sprintf "%s %7d B text"
    (match protection with
    | Registry.Encrypted -> "encrypted"
    | Registry.Unmap_only -> "unmap-only")
    text_size

let protection_ablation ?(runner = Runner.sequential) ?(text_sizes = [ 4096; 65536; 262144 ])
    ?(trials = 5) () =
  let configs =
    List.concat_map
      (fun text_size -> [ (Registry.Unmap_only, text_size); (Registry.Encrypted, text_size) ])
      text_sizes
  in
  map_trials runner ~trials configs (fun (protection, text_size) ~trial ->
      establishment_trial ~protection ~text_size ~trial)
  |> List.map (fun ((protection, text_size), samples) ->
         entry_of_means (protection_label protection text_size) samples)

(* ------------------------------------------------------------------ *)
(* E12: shared handle bottleneck                                       *)
(* ------------------------------------------------------------------ *)

let service_charge machine =
  (* Stand-in for the handle executing the function: stub receive, a few
     VM instructions, stub return. *)
  let clock = Machine.clock machine in
  Clock.charge clock Smod_sim.Cost_model.Stub_receive;
  Clock.charge_n clock Smod_sim.Cost_model.Svm_instr 4;
  Clock.charge clock Smod_sim.Cost_model.Stub_return

(* A single simulated CPU serialises all service work, so per-call latency
   cannot distinguish the two designs; what can is the request queue a
   shared handle accumulates.  We record, at every service, how many
   requests are still waiting behind the one being served: a private
   handle's queue is empty, a shared handle's grows with the client
   count — the many-to-one bottleneck of §4.3. *)
let run_queueing ~machine ~shared ~k ~calls_per_client =
  let depths = ref [] in
  (* Request payload carries the reply qid in its first 4 bytes. *)
  let workers = if shared then 1 else k in
  let req_qids = Array.make workers 0 in
  for w = 0 to workers - 1 do
    ignore
      (Machine.spawn machine ~daemon:true ~name:(Printf.sprintf "worker-%d" w) (fun p ->
           req_qids.(w) <- Machine.msgget machine p ~key:(8000 + w);
           let rec loop () =
             let _, payload = Machine.msgrcv machine p ~qid:req_qids.(w) ~mtype:1 in
             depths := float_of_int (Machine.msgq_depth machine ~qid:req_qids.(w)) :: !depths;
             service_charge machine;
             let rep_qid = Wire.reply_of_bytes payload in
             Machine.msgsnd machine p ~qid:rep_qid.Wire.status ~mtype:1 (Bytes.create 8);
             loop ()
           in
           loop ()))
  done;
  for c = 0 to k - 1 do
    ignore
      (Machine.spawn machine ~name:(Printf.sprintf "qclient-%d" c) (fun p ->
           let rep_qid = Machine.msgget machine p ~key:(9000 + c) in
           let worker = if shared then 0 else c in
           let req = Wire.reply_to_bytes { Wire.status = rep_qid; retval = 0 } in
           for _ = 1 to calls_per_client do
             Machine.msgsnd machine p ~qid:req_qids.(worker) ~mtype:1 req;
             ignore (Machine.msgrcv machine p ~qid:rep_qid ~mtype:1)
           done))
  done;
  Machine.run machine;
  Array.of_list !depths

let handle_sharing ?(runner = Runner.sequential) ?(clients = [ 1; 2; 4; 8 ])
    ?(calls_per_client = 300) () =
  let configs = List.concat_map (fun k -> [ (k, false); (k, true) ]) clients in
  map_trials runner ~trials:1 configs (fun (k, shared) ~trial:_ ->
      let machine = Machine.create () in
      run_queueing ~machine ~shared ~k ~calls_per_client)
  |> List.map (fun ((k, shared), depth_runs) ->
         let depths = depth_runs.(0) in
         {
           label =
             Printf.sprintf "%d clients, %s" k
               (if shared then "shared handle" else "own handles");
           mean_us = Stats.mean depths;
           stdev_us = Stats.stdev depths;
         })

(* ------------------------------------------------------------------ *)
(* E14: the §5 "reduce redundant checks" future-work fast path          *)
(* ------------------------------------------------------------------ *)

let fast_path ?(runner = Runner.sequential) ?(calls = 2_000) ?(trials = 5) () =
  let configs =
    [ ("prototype (per-call recheck)", false); ("fast path (checks hoisted)", true) ]
  in
  map_trials runner ~trials configs (fun (label, enabled) ~trial ->
      test_incr_trial
        ~setup:(fun w -> Smod.set_call_fast_path w.World.smod enabled)
        ~label ~calls ~trials ~seed:(7300 + trial) ~trial ())
  |> List.map (fun ((label, _), samples) -> entry_of_means label samples)

(* ------------------------------------------------------------------ *)
(* E15: syscall-interposition overhead (section 2 comparison)           *)
(* ------------------------------------------------------------------ *)

module Systrace = Smod_systrace.Systrace

let systrace_policy =
  "policy: p\n\
   native-msgsnd: permit\n\
   native-msgrcv: permit\n\
   native-obreak: permit\n\
   native-getpid: permit\n\
   default: deny\n"

let systrace_trial ~attach ~calls ~trial =
  let machine = Machine.create ~seed:(Int64.of_int (2000 + trial)) ~jitter:0.0 () in
  let tracer = Systrace.install machine in
  let cost = ref 0.0 in
  ignore
    (Machine.spawn machine ~name:"systrace-app" (fun p ->
         if attach then
           Systrace.attach tracer ~pid:p.Proc.pid (Systrace.parse_policy systrace_policy);
         let clock = Machine.clock machine in
         let t0 = Clock.now_cycles clock in
         for _ = 1 to calls do
           ignore (Machine.sys_getpid machine p)
         done;
         cost := Clock.elapsed_us clock ~since:t0 /. float_of_int calls));
  Machine.run machine;
  !cost

(* The paper's section-2 alternative: a syscall-level monitor pays a
   linear rule scan on every trap.  Time getpid() bare and under a
   systrace policy whose getpid rule sits last in a 4-rule list, per
   trial, so the entries carry a real stdev like every other table. *)
let systrace_overhead ?(runner = Runner.sequential) ?(calls = 1_000) ?(trials = 5) () =
  let configs = [ ("getpid bare", false); ("getpid under systrace (4-rule scan)", true) ] in
  map_trials runner ~trials configs (fun (_, attach) ~trial -> systrace_trial ~attach ~calls ~trial)
  |> List.map (fun ((label, _), samples) -> entry_of_means label samples)

(* ------------------------------------------------------------------ *)
(* E16: smodd session pooling (lib/pool)                               *)
(* ------------------------------------------------------------------ *)

(* One module, so the per-module cap is the global cap; queue deep enough
   that 64 steady-state clients never see EAGAIN. *)
let pool_config =
  {
    Smod_pool.Smodd.default_config with
    max_handles_per_module = 16;
    max_total_handles = 16;
    max_queue_depth = 128;
  }

(* Establishment latency, cold fork vs warm pooled attach.  The pooled
   world gets exactly one handle so every timed session reuses it; the
   warmup connect pays the one-off fork. *)
let start_session_trial ~pooled ~sessions ~trial =
  let pool =
    if pooled then Some { pool_config with max_handles_per_module = 1; max_total_handles = 1 }
    else None
  in
  let world = World.create ~seed:(Int64.of_int (3000 + trial)) ?pool ~with_rpc:false () in
  let clock = Machine.clock world.World.machine in
  let mean = ref 0.0 in
  ignore
    (Machine.spawn world.World.machine ~name:"pool-estab-client" (fun p ->
         let credential = Credential.make ~principal:"client" () in
         let connect () =
           Stub.connect world.World.smod p ~module_name:Smod_libc.Seclibc.module_name
             ~version:Smod_libc.Seclibc.version ~credential
         in
         Stub.close (connect ());
         let total = ref 0.0 in
         for _ = 1 to sessions do
           let t0 = Clock.now_cycles clock in
           let conn = connect () in
           total := !total +. Clock.elapsed_us clock ~since:t0;
           Stub.close conn
         done;
         mean := !total /. float_of_int sessions));
  World.run world;
  !mean

(* Steady state: K clients each run a connect / calls / close lifetime;
   kcalls/s over the whole run.  Beyond 16 clients smodd multiplexes the
   population through the admission queue. *)
let throughput_trial ~pooled ~k ~calls ~trial =
  let pool = if pooled then Some pool_config else None in
  let world =
    World.create ~seed:(Int64.of_int (4000 + (17 * trial))) ?pool ~with_rpc:false ()
  in
  let clock = Machine.clock world.World.machine in
  for c = 0 to k - 1 do
    World.spawn_seclibc_client world
      ~name:(Printf.sprintf "pool-tp-%d" c)
      (fun _p conn ->
        for j = 1 to calls do
          ignore (Smod_libc.Seclibc.Client.test_incr conn j)
        done)
  done;
  World.run world;
  float_of_int (k * calls) *. 1_000.0 /. Clock.now_us clock

let pooling ?(runner = Runner.sequential) ?(sessions = 20) ?(calls = 150)
    ?(clients = [ 1; 8; 64 ]) ?(trials = 3) () =
  let configs =
    [ `Start false; `Start true ]
    @ List.concat_map (fun k -> [ `Tp (false, k); `Tp (true, k) ]) clients
  in
  map_trials runner ~trials configs (fun cfg ~trial ->
      match cfg with
      | `Start pooled -> start_session_trial ~pooled ~sessions ~trial
      | `Tp (pooled, k) -> throughput_trial ~pooled ~k ~calls ~trial)
  |> List.map (fun (cfg, samples) ->
         let label =
           match cfg with
           | `Start true -> "pooled attach (smodd, warm)"
           | `Start false -> "cold fork per session"
           | `Tp (pooled, k) ->
               Printf.sprintf "%s %2d clients (kcalls/s)"
                 (if pooled then "pooled" else "cold  ")
                 k
         in
         entry_of_means label samples)

(* ------------------------------------------------------------------ *)
(* E18: shared-memory dispatch rings vs msgq transport                 *)
(* ------------------------------------------------------------------ *)

(* One trial: [rounds] batches over one transport, per-call latency
   sampled per round.  The msgq rows issue the batch as back-to-back
   legacy calls (each paying its own trap, two message-queue crossings
   and a policy evaluation); the ring rows submit the batch through the
   shared-memory ring (one trap, one policy evaluation and at most one
   handle wakeup per batch).  At batch 1 the ring still pays its own
   round trip, so it must merely not lose; the amortisation shows from
   batch 4 up.  Mean and p99 are both recorded — the ring's tail is what
   the doorbell fallback and spin budget are for. *)
let ring_trial ~use_ring ~batch ~rounds ~trial =
  let world = World.create ~seed:(Int64.of_int (5000 + (13 * trial))) ~with_rpc:false () in
  let clock = Machine.clock world.World.machine in
  let mean = ref Float.nan and p99 = ref Float.nan in
  World.spawn_seclibc_client world ~name:"ring-bench" (fun _p conn ->
      if use_ring then ignore (Stub.arm_ring conn);
      let argss = List.init batch (fun i -> [| i |]) in
      let do_batch () =
        if use_ring then ignore (Stub.call_batch conn ~func:"test_incr" argss)
        else List.iter (fun args -> ignore (Stub.call conn ~func:"test_incr" args)) argss
      in
      (* Warm the session (symbol lookup, ring registration). *)
      do_batch ();
      let samples = Array.make rounds 0.0 in
      for r = 0 to rounds - 1 do
        let t0 = Clock.now_cycles clock in
        do_batch ();
        samples.(r) <- Clock.elapsed_us clock ~since:t0 /. float_of_int batch
      done;
      mean := Stats.mean samples;
      p99 := Stats.percentile samples 99.0);
  World.run world;
  (!mean, !p99)

let ring_dispatch ?(runner = Runner.sequential) ?(batches = [ 1; 4; 16; 64 ]) ?(rounds = 200)
    ?(trials = 5) () =
  let configs =
    List.concat_map
      (fun batch -> [ (batch, "msgq", false); (batch, "ring", true) ])
      batches
  in
  map_trials runner ~trials configs (fun (batch, _, use_ring) ~trial ->
      ring_trial ~use_ring ~batch ~rounds ~trial)
  |> List.concat_map (fun ((batch, transport, _), pairs) ->
         [
           entry_of_means
             (Printf.sprintf "%s batch %2d (mean)" transport batch)
             (Array.map fst pairs);
           entry_of_means
             (Printf.sprintf "%s batch %2d (p99)" transport batch)
             (Array.map snd pairs);
         ])

(* ------------------------------------------------------------------ *)
(* E19: compiled decision programs vs interpreted KeyNote              *)
(* ------------------------------------------------------------------ *)

(* The E9 ladder again, but with the matching rung reading a volatile
   attribute (calls_so_far), so the verdict is not a pure function of its
   inputs: smodd's decision cache cannot memoise it and the batch path
   must evaluate policy per slot.  This is the worst case for the
   interpreter — a full assertion walk per call — and exactly where the
   compiled engine's flat opcode program earns its keep.  The bound is
   effectively infinite, so every call is allowed and the establishment
   check (where calls_so_far is unset and compares lexicographically)
   passes too. *)
let volatile_keynote_policy_with n =
  let assertions =
    List.init n (fun i ->
        Parse.assertion_of_string
          (Printf.sprintf
             "keynote-version: 2\n\
              authorizer: \"POLICY\"\n\
              licensees: \"client\"\n\
              conditions: module == \"seclibc\" && clause == %d -> \"allow\";\n"
             i))
  in
  let assertions =
    Parse.assertion_of_string
      "keynote-version: 2\n\
       authorizer: \"POLICY\"\n\
       licensees: \"client\"\n\
       conditions: module == \"seclibc\" && calls_so_far < 1000000000 -> \"allow\";\n"
    :: assertions
  in
  Policy.Keynote
    { policy = assertions; levels = [| "deny"; "allow" |]; min_level = "allow"; attrs = [] }

let compile_trial ~use_ring ~compile ~n ~batch ~rounds ~trial =
  let world =
    World.create
      ~seed:(Int64.of_int (6000 + (13 * trial)))
      ~policy:(volatile_keynote_policy_with (n - 1))
      ~with_rpc:false ()
  in
  Smod.set_policy_compile world.World.smod compile;
  let clock = Machine.clock world.World.machine in
  let mean = ref Float.nan and p99 = ref Float.nan in
  World.spawn_seclibc_client world ~name:"compile-bench" (fun _p conn ->
      if use_ring then ignore (Stub.arm_ring conn);
      let argss = List.init batch (fun i -> [| i |]) in
      let do_batch () =
        if use_ring then ignore (Stub.call_batch conn ~func:"test_incr" argss)
        else List.iter (fun args -> ignore (Stub.call conn ~func:"test_incr" args)) argss
      in
      (* Warm the session: symbol lookup, ring registration and — on the
         compiled rows — the one-off compilation. *)
      do_batch ();
      let samples = Array.make rounds 0.0 in
      for r = 0 to rounds - 1 do
        let t0 = Clock.now_cycles clock in
        do_batch ();
        samples.(r) <- Clock.elapsed_us clock ~since:t0 /. float_of_int batch
      done;
      mean := Stats.mean samples;
      p99 := Stats.percentile samples 99.0);
  World.run world;
  (!mean, !p99)

(* Per-call latency by assertion count, over both transports and both
   engines.  The msgq rows issue plain calls; the ring rows submit
   [batch]-slot batches (amortising trap and wakeup, but still one policy
   evaluation per slot — the volatile guard forbids anything less).
   Interpreted rows pay the full KeyNote walk per slot; compiled rows pay
   the session-memo check plus the opcode program.  Mean and p99 per
   configuration, like E18. *)
let policy_compile_dispatch ?(runner = Runner.sequential) ?(assertions = [ 1; 4; 16; 64 ])
    ?(batch = 16) ?(rounds = 100) ?(trials = 5) () =
  let configs =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun (transport, use_ring) ->
            List.map
              (fun (engine, compile) -> (n, transport, use_ring, engine, compile))
              [ ("interp", false); ("compiled", true) ])
          [ ("msgq", false); ("ring", true) ])
      assertions
  in
  map_trials runner ~trials configs (fun (n, _, use_ring, _, compile) ~trial ->
      compile_trial ~use_ring ~compile ~n ~batch ~rounds ~trial)
  |> List.concat_map (fun ((n, transport, _, engine, _), pairs) ->
         [
           entry_of_means
             (Printf.sprintf "%s kn-%2d %-8s (mean)" transport n engine)
             (Array.map fst pairs);
           entry_of_means
             (Printf.sprintf "%s kn-%2d %-8s (p99)" transport n engine)
             (Array.map snd pairs);
         ])

(* ------------------------------------------------------------------ *)
(* E13 cost: TOCTOU mitigations (implementation)                       *)
(* ------------------------------------------------------------------ *)

let toctou_cost ?(runner = Runner.sequential) ?(calls = 1_000) ?(trials = 5) () =
  let configs =
    [
      ("no mitigation", Smod.No_mitigation);
      ("unmap during call", Smod.Unmap_during_call);
      ("dequeue client threads", Smod.Dequeue_client_threads);
    ]
  in
  map_trials runner ~trials configs (fun (label, mitigation) ~trial ->
      test_incr_trial
        ~setup:(fun w -> Smod.set_toctou_mitigation w.World.smod mitigation)
        ~label ~calls ~trials ~seed:(7200 + trial) ~trial ())
  |> List.map (fun ((label, _), samples) -> entry_of_means label samples)
