(** benchdiff's comparison core: row-by-row drift gating between two
    bench documents under per-metric thresholds.

    Mean rows are gated tighter than tail rows — a row whose label
    contains "p99" (case-insensitive) is a {!P99} metric and judged at
    [g_p99_rel]; everything else is a {!Mean} judged at [g_mean_rel].
    The thresholds live in a {!gates} value, loadable from the
    checked-in [bench/gates.json] ("smod-bench-gates" schema) so CI and
    local runs share one configuration.

    Baseline rows missing from the current document are reported as
    {!Skipped}, never silently passed; {!ok} additionally requires that
    at least one row was actually compared. *)

type metric = Mean | P99

val metric_of_label : string -> metric
(** [P99] iff the label contains "p99", case-insensitive. *)

type gates = {
  g_mean_rel : float;  (** relative tolerance for mean rows *)
  g_p99_rel : float;  (** looser relative tolerance for p99 rows *)
  g_abs_eps : float;  (** additive slack, absorbs exact-zero baselines *)
  g_abs_eps_for : (string * float) list;
      (** per-experiment-id overrides of [g_abs_eps] *)
  g_rel_for : (string * (float * float)) list;
      (** per-experiment-id [(mean_rel, p99_rel)] overrides of the
          global relative tolerances, for inherently noisier
          experiments; each pair must keep mean no looser than p99 *)
}

val default_gates : gates
(** 2% mean, 5% p99, 1e-9 additive epsilon, no overrides. *)

val gates_to_json : gates -> Smod_util.Json.t
val gates_to_string : gates -> string

val gates_of_json : Smod_util.Json.t -> gates
val gates_of_string : string -> gates
(** Raise {!Smod_util.Json.Parse_error} on a malformed document, an
    unknown schema/version, negative or non-finite thresholds, or a
    mean tolerance looser than the p99 tolerance. *)

type status = Pass | Fail | Skipped

type row_result = {
  rr_experiment : string;
  rr_label : string;
  rr_metric : metric;
  rr_base : float;
  rr_cur : float option;  (** [None]: row missing in current — skipped *)
  rr_rel_tol : float;  (** relative tolerance this row was judged with *)
  rr_abs_eps : float;  (** additive epsilon this row was judged with *)
  rr_status : status;
}

type result = {
  rows : row_result list;  (** baseline document order *)
  compared : int;  (** rows present in both documents *)
  failed : int;
  skipped : int;  (** baseline rows with no counterpart in current *)
  extra : string list;  (** ["<exp>/<label>"] rows only in current *)
}

val compare_docs :
  ?gates:gates -> baseline:Bench_json.doc -> current:Bench_json.doc -> unit -> result
(** A compared row passes when
    [|cur - base| <= abs_eps + rel_tol * |base|]. *)

val ok : result -> bool
(** At least one row compared and none failed.  Skipped rows do not
    fail the gate, but a comparison that skipped everything does. *)

val render : ?gates:gates -> result -> string
(** The per-row ok/FAIL/skip report plus a one-line summary; shared by
    [bin/benchdiff.ml] and CI logs. *)
