(* E25: vectorized batch-major residue execution — one pass per opcode
   over all N lanes — against slot-major fused replay and per-slot
   compiled execution, across batch size, assertion count and both
   batched admission transports (ring trap, E22 kernel poller; msgq is
   scalar by construction and has no vector row).

   The E24 ladder is useless here: its matching rung reads calls_so_far,
   which makes lane k's input depend on how many earlier lanes were
   allowed — exactly the volatile shape the vector path refuses
   (Policy.vector_eligible) and falls back slot-major on.  So this
   ladder keeps the same invariant conjuncts but varies on [function]
   instead: every rung opens with a function term, which drags the whole
   segment into the per-slot residue (a segment reading any varying
   attribute is residue wholesale).  Fusion hoists nothing; the fused
   engine replays the full ladder per slot, and the vectorized engine
   walks the same opcodes once per batch at ceil(live/W) units per pass
   — the lane-width discount is the measured claim.

   Two details defeat the scalar path's own batch memo: the ladder is a
   pure function of [function] (cacheable), so the slot-major decider
   memoizes per func_id within a batch — one evaluation per distinct
   function — and the vector pre-pass deduplicates the same way.  A
   single-function batch would therefore measure 1 evaluation vs 1
   evaluation.  The bench registers its own 128-function module
   ("vecmod": 64 allow-family vf_nn, 64 deny-family xf_nn) and gives
   every slot a distinct function via {!Stub.call_batch_funcs}, so a batch of
   64 is 64 genuine evaluations on the scalar engines and one vectorized
   sweep on the vector engine.

   The divergence ladder rides along: X% of a 64-slot batch calls
   deny-family functions (function < "x" fails), which fail the matching
   rung's first test and jump to segment end after one pass — the live
   count the ceil(live/W) charge sees shrinks, without branching the
   walk.  0/25/50/100% denying lanes measure how the vector win degrades
   (or doesn't) under divergence.

   Each (cell, trial) task builds a private world from coordinate-derived
   seeds, so the document is bit-identical for any job count. *)

module Machine = Smod_kern.Machine
module Clock = Smod_sim.Clock
module Stats = Smod_util.Stats
module Parse = Smod_keynote.Parse
open Secmodule

type transport = Ring | Poller

let transport_name = function Ring -> "ring" | Poller -> "poller"

type engine = Perslot | Fused | Vector

let engine_name = function Perslot -> "perslot" | Fused -> "fused" | Vector -> "vectorized"

type config = {
  cells : (int * int) list;  (* (batch, assertions) *)
  rounds : int;  (* measured batches per trial *)
  trials : int;
  divergence : int list;  (* percent of lanes denying early *)
}

let default_config =
  {
    cells = [ (1, 16); (4, 16); (16, 16); (64, 16); (64, 1); (64, 4); (64, 64) ];
    rounds = 60;
    trials = 3;
    divergence = [ 0; 25; 50; 100 ];
  }

(* ------------------------------------------------------------------ *)
(* The vecmod module                                                   *)
(* ------------------------------------------------------------------ *)

let vec_module_name = "vecmod"
let family_size = 64

let allow_func i = Printf.sprintf "vf_%02d" (i mod family_size)
let deny_func i = Printf.sprintf "xf_%02d" (i mod family_size)

(* 128 tiny bytecode members: enough distinct funcIDs that every slot of
   a 64-batch carries its own function column entry.  The bodies differ
   (each adds its own constant) so the symbol table can't collapse. *)
let image () =
  Toolchain.assemble_module ~name:vec_module_name ~version:1
    (List.init family_size (fun i ->
         (allow_func i, Printf.sprintf "loadarg 0\npush %d\nadd\nret\n" i))
    @ List.init family_size (fun i ->
          (deny_func i, Printf.sprintf "loadarg 0\npush %d\nadd\nret\n" (1000 + i))))

(* ------------------------------------------------------------------ *)
(* Policies                                                            *)
(* ------------------------------------------------------------------ *)

(* [n]-assertion ladder, all-residue: every rung opens with a function
   term ahead of the same invariant conjuncts, so no segment is
   batch-invariant and the whole ladder replays per slot on the fused
   engine.  The matching rung's guard is a parameter: the main ladder
   uses a tautology (every function allowed); the divergence ladder uses
   [function < "x"], which admits vf_* and refuses xf_* on the first
   test of the segment. *)
let ladder_policy ?(matching_guard = "function != \"__none\"") n =
  let invariant_tail =
    "module == \"vecmod\" && origin_ring <= 3 && tier == \"gold\" && region == \"us\""
  in
  let matching =
    Parse.assertion_of_string
      (Printf.sprintf
         "keynote-version: 2\n\
          authorizer: \"POLICY\"\n\
          licensees: \"client\"\n\
          conditions: %s && %s -> \"allow\";\n"
         matching_guard invariant_tail)
  in
  let non_matching =
    List.init (n - 1) (fun i ->
        Parse.assertion_of_string
          (Printf.sprintf
             "keynote-version: 2\n\
              authorizer: \"POLICY\"\n\
              licensees: \"client\"\n\
              conditions: function == \"__clause_%d\" && %s -> \"allow\";\n"
             i invariant_tail))
  in
  Policy.Keynote
    {
      policy = matching :: non_matching;
      levels = [| "deny"; "allow" |];
      min_level = "allow";
      attrs = [ ("tier", "gold"); ("region", "us") ];
    }

(* ------------------------------------------------------------------ *)
(* One (cell, trial) measurement                                       *)
(* ------------------------------------------------------------------ *)

let set_engine smod = function
  | Perslot -> Smod.set_policy_compile smod true
  | Fused ->
      Smod.set_policy_compile smod true;
      Smod.set_policy_fuse smod true
  | Vector ->
      Smod.set_policy_compile smod true;
      Smod.set_policy_fuse smod true;
      Smod.set_policy_vectorize smod true

(* [deny_pct] of the batch calls deny-family functions, interleaved
   (i mod 4 spread) so divergence is within every ring chunk rather than
   a prefix. *)
let batch_calls conn ~batch ~deny_pct =
  List.init batch (fun i ->
      let denied = deny_pct > 0 && i mod 4 < deny_pct / 25 in
      let name = if denied then deny_func i else allow_func i in
      match Stub.func_id conn name with
      | Some id -> (id, [| i |])
      | None -> invalid_arg ("vexec_bench: no symbol " ^ name))

let cell_trial ~policy ~transport ~engine ~batch ~deny_pct ~rounds ~seed =
  let world = World.create ~seed:(Int64.of_int seed) ~with_rpc:false () in
  let smod = world.World.smod in
  set_engine smod engine;
  (match transport with
  | Poller ->
      Smod.set_kernel_poller smod true;
      Smod.set_session_mux smod true
  | Ring -> ());
  ignore
    (Toolchain.package smod ~image:(image ()) ~protection:Registry.Encrypted ~policy ());
  let clock = Machine.clock world.World.machine in
  let credential = World.credential world in
  let mean = ref Float.nan and p99 = ref Float.nan in
  ignore
    (Machine.spawn world.World.machine ~name:"e25-client" (fun p ->
         Crt0.run_client smod p ~module_name:vec_module_name ~version:1 ~credential
           (fun conn ->
             ignore (Stub.arm_ring ~nslots:(max batch 16) conn);
             let calls = batch_calls conn ~batch ~deny_pct in
             let do_batch () = ignore (Stub.call_batch_funcs conn calls) in
             (* Warm: symbol lookup, ring arming, the one-off compile +
                plan + fused-ctx memo fill. *)
             do_batch ();
             let samples = Array.make rounds 0.0 in
             for r = 0 to rounds - 1 do
               let t0 = Clock.now_cycles clock in
               do_batch ();
               samples.(r) <- Clock.elapsed_us clock ~since:t0 /. float_of_int batch
             done;
             mean := Stats.mean samples;
             p99 := Stats.percentile samples 99.0)));
  World.run world;
  (!mean, !p99)

(* ------------------------------------------------------------------ *)
(* The experiment                                                      *)
(* ------------------------------------------------------------------ *)

let engines = [ Perslot; Fused; Vector ]
let div_engines = [ Fused; Vector ]

let engine_offset = function Perslot -> 0 | Fused -> 7 | Vector -> 14

let run ?(runner = Runner.sequential) ?(config = default_config) () =
  let main_configs =
    List.concat_map
      (fun (batch, kn) ->
        List.concat_map
          (fun transport -> List.map (fun e -> `Main (batch, kn, transport, e)) engines)
          [ Ring; Poller ])
      config.cells
  in
  let div_configs =
    List.concat_map
      (fun pct -> List.map (fun e -> `Div (pct, e)) div_engines)
      config.divergence
  in
  let measure cfg ~trial =
    match cfg with
    | `Main (batch, kn, transport, engine) ->
        let seed =
          25_000 + (1009 * trial) + (17 * batch) + (3 * kn)
          + (match transport with Ring -> 0 | Poller -> 1)
          + engine_offset engine
        in
        cell_trial ~policy:(ladder_policy kn) ~transport ~engine ~batch ~deny_pct:0
          ~rounds:config.rounds ~seed
    | `Div (pct, engine) ->
        let seed = 25_800 + (1009 * trial) + pct + engine_offset engine in
        cell_trial
          ~policy:(ladder_policy ~matching_guard:"function < \"x\"" 16)
          ~transport:Ring ~engine ~batch:64 ~deny_pct:pct ~rounds:config.rounds ~seed
  in
  let results =
    Ablations.map_trials runner ~trials:config.trials (main_configs @ div_configs) measure
  in
  let mean_of pairs = Stats.mean (Array.map fst pairs) in
  let label_of = function
    | `Main (batch, kn, transport, e) ->
        Printf.sprintf "%s b%d kn-%d %s" (transport_name transport) batch kn
          (engine_name e)
    | `Div (pct, e) -> Printf.sprintf "div-%d ring b64 kn-16 %s" pct (engine_name e)
  in
  let measured =
    List.concat_map
      (fun (cfg, pairs) ->
        let label = label_of cfg in
        [
          Ablations.entry_of_means (label ^ " (mean)") (Array.map fst pairs);
          Ablations.entry_of_means (label ^ " (p99)") (Array.map snd pairs);
        ])
      results
  in
  (* Speedup ratios per cell: the vector win over the fused engine (the
     headline) and the fused win over per-slot (continuity with E24 on
     an all-residue ladder, where hoisting buys nothing). *)
  let ratio label num den = Ablations.{ label; mean_us = num /. den; stdev_us = 0.0 } in
  let main_ratios =
    List.concat_map
      (fun (batch, kn) ->
        List.concat_map
          (fun transport ->
            let find e = mean_of (List.assoc (`Main (batch, kn, transport, e)) results) in
            let perslot = find Perslot and fused = find Fused and vector = find Vector in
            let cell = Printf.sprintf "%s b%d kn-%d" (transport_name transport) batch kn in
            [
              ratio (cell ^ " vec speedup (ratio)") fused vector;
              ratio (cell ^ " fused speedup (ratio)") perslot fused;
            ])
          [ Ring; Poller ])
      config.cells
  in
  let div_ratios =
    List.map
      (fun pct ->
        let find e = mean_of (List.assoc (`Div (pct, e)) results) in
        ratio
          (Printf.sprintf "div-%d ring b64 kn-16 vec speedup (ratio)" pct)
          (find Fused) (find Vector))
      config.divergence
  in
  measured @ main_ratios @ div_ratios

let task_count config =
  ((List.length engines * 2 * List.length config.cells)
  + (List.length div_engines * List.length config.divergence))
  * config.trials

let dispatch_count config =
  let main_per_round =
    List.fold_left (fun acc (b, _) -> acc + b) 0 config.cells * List.length engines * 2
  in
  let div_per_round = 64 * List.length div_engines * List.length config.divergence in
  (main_per_round + div_per_round) * (config.rounds + 1) * config.trials
