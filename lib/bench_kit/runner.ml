(* Parallel task execution for the bench harness.

   A runner maps a task list over a pool of OCaml 5 domains.  Each task
   runs with a FRESH domain-local metrics registry (Smod_metrics.
   with_registry), and after all workers join, every task's metric
   snapshot is merged into the caller's registry in task-index order.
   Because the per-task work is deterministic (each World owns its own
   machine, clock and RNG, and trial noise derives from the task's own
   seed — see Trial) and the merge order is fixed, results and merged
   metrics are bit-identical for any [jobs] value — [jobs] only changes
   wall-clock.  [jobs = 1] uses the very same fresh-registry pipeline, so
   float sums see the same additions in the same order as [jobs = N].

   Scheduling is a shared atomic next-task index: domains steal the next
   unclaimed task, so long tasks (e.g. a full-count Figure 8 trial) do
   not serialise behind a static partition.  Worker exceptions are
   captured per-task and re-raised on the caller's domain, lowest task
   index first. *)

type t = { jobs : int }

let create ~jobs =
  if jobs < 1 then invalid_arg "Runner.create: jobs must be >= 1";
  { jobs }

let sequential = { jobs = 1 }
let default_jobs () = max 1 (Domain.recommended_domain_count ())
let jobs t = t.jobs

type 'a outcome = Done of 'a * Smod_metrics.snapshot | Failed of exn * Printexc.raw_backtrace

let run_task f arg =
  let registry = Smod_metrics.create () in
  match
    Smod_metrics.with_registry registry (fun () ->
        let v = f arg in
        (v, Smod_metrics.snapshot ~registry ()))
  with
  | v, snap -> Done (v, snap)
  | exception e -> Failed (e, Printexc.get_raw_backtrace ())

let collect results n =
  (* Merge every task's metrics into the caller's registry in task order
     — THE determinism point: float additions happen in index order no
     matter which domain ran which task, or when it finished. *)
  for i = 0 to n - 1 do
    match results.(i) with
    | Some (Done (_, snap)) -> Smod_metrics.merge snap
    | Some (Failed _) | None -> ()
  done;
  Array.iteri
    (fun _ r ->
      match r with
      | Some (Failed (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Done _) | None -> ())
    results;
  Array.map
    (function
      | Some (Done (v, _)) -> v
      | Some (Failed _) | None -> assert false (* raised above *))
    results

let map t tasks f =
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let workers = min t.jobs n in
    if workers = 1 then
      for i = 0 to n - 1 do
        results.(i) <- Some (run_task f tasks.(i))
      done
    else begin
      let next = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            results.(i) <- Some (run_task f tasks.(i));
            loop ()
          end
        in
        loop ()
      in
      (* workers - 1 spawned domains; the calling domain works too. *)
      let domains = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join domains
    end;
    Array.to_list (collect results n)
  end
