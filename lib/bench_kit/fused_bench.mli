(** E24: fused batch policy evaluation vs per-slot compiled execution.

    Measures the {!Smod_keynote.Fuse} engine across batch size, assertion
    count and all three admission transports (msgq scalar, ring batch,
    kernel poller), emits per-cell speedup-ratio rows (the >= 3x headline
    at ring b64 kn-16 is a gated row), the structural-sharing
    compile-memory curve, and the origin-predicate ladder with its
    deny-by-origin path. *)

type config = {
  cells : (int * int) list;  (** (batch, assertions) measurement cells *)
  rounds : int;  (** measured batches per trial *)
  trials : int;
  mem_sizes : int list;  (** registry sizes for the compile-memory curve *)
  origin_terms : int list;  (** origin-predicate ladder rungs (0..3) *)
}

val default_config : config

val run :
  ?runner:Runner.t -> ?config:config -> unit -> Ablations.entry list
(** Deterministic for any job count: every (cell, trial) task builds a
    private world from coordinate-derived seeds, and the memory curve
    resets the calling domain's arena before measuring. *)

val task_count : config -> int
val dispatch_count : config -> int
