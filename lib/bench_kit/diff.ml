(* benchdiff's comparison core, as a library (PR 6).

   Compares any two smod-bench documents row by row under per-metric
   gates in the ROCmForge style: a row whose label marks it as a tail
   quantile ("p99") is judged at a looser relative tolerance than a mean
   row — means are tight repeatable statistics, tails wobble.  The gate
   set is data ([gates], checked in as bench/gates.json) so CI and a
   developer's shell agree on the thresholds without flag archaeology.

   A baseline row with no counterpart in the current document is
   SKIPPED, never silently passed: the report says so row by row and the
   summary counts them, so a smoke run gating a subset of the committed
   baseline shows exactly what it did not check. *)

module Json = Smod_util.Json

(* ------------------------------------------------------------------ *)
(* Gates                                                               *)
(* ------------------------------------------------------------------ *)

type metric = Mean | P99

(* Row classification is by label: every tail row the harness emits
   spells "p99" in its label ("ring batch 16 (p99)", "msgq K=8 p99 (us)"). *)
let metric_of_label label =
  let l = String.lowercase_ascii label in
  let n = String.length l in
  let rec has i = i + 3 <= n && (String.sub l i 3 = "p99" || has (i + 1)) in
  if has 0 then P99 else Mean

type gates = {
  g_mean_rel : float;  (* relative tolerance for mean rows *)
  g_p99_rel : float;  (* looser relative tolerance for p99 rows *)
  g_abs_eps : float;  (* additive slack, absorbs exact-zero baselines *)
  g_abs_eps_for : (string * float) list;  (* per-experiment overrides *)
  g_rel_for : (string * (float * float)) list;
      (* per-experiment (mean_rel, p99_rel) overrides, for experiments
         whose rows are inherently noisier than the global gate — e.g.
         e21's aggregate throughput over eight racing domains *)
}

let default_gates =
  {
    g_mean_rel = 0.02;
    g_p99_rel = 0.05;
    g_abs_eps = 1e-9;
    g_abs_eps_for = [];
    g_rel_for = [];
  }

let gates_schema_name = "smod-bench-gates"
let gates_schema_version = 1

let validate_gates g =
  let bad fmt = Printf.ksprintf (fun m -> raise (Json.Parse_error m)) fmt in
  let check name v =
    if v < 0.0 || not (Float.is_finite v) then bad "gates: %s must be finite and >= 0" name
  in
  check "mean_rel" g.g_mean_rel;
  check "p99_rel" g.g_p99_rel;
  check "abs_eps" g.g_abs_eps;
  List.iter (fun (id, e) -> check ("abs_eps_for." ^ id) e) g.g_abs_eps_for;
  List.iter
    (fun (id, (m, p)) ->
      check ("rel_for." ^ id ^ ".mean_rel") m;
      check ("rel_for." ^ id ^ ".p99_rel") p;
      if m > p then
        bad "gates: rel_for.%s: mean_rel (%g) must not exceed p99_rel (%g)" id m p)
    g.g_rel_for;
  if g.g_mean_rel > g.g_p99_rel then
    bad "gates: mean_rel (%g) must not exceed p99_rel (%g) — means are gated tighter"
      g.g_mean_rel g.g_p99_rel;
  g

let gates_to_json g =
  Json.Obj
    [
      ("schema", Json.String gates_schema_name);
      ("schema_version", Json.Int gates_schema_version);
      ("mean_rel", Json.Float g.g_mean_rel);
      ("p99_rel", Json.Float g.g_p99_rel);
      ("abs_eps", Json.Float g.g_abs_eps);
      ( "abs_eps_for",
        Json.Obj (List.map (fun (id, e) -> (id, Json.Float e)) g.g_abs_eps_for) );
      ( "rel_for",
        Json.Obj
          (List.map
             (fun (id, (m, p)) ->
               (id, Json.Obj [ ("mean_rel", Json.Float m); ("p99_rel", Json.Float p) ]))
             g.g_rel_for) );
    ]

let gates_of_json j =
  (match Json.member "schema" j with
  | Some (Json.String s) when s = gates_schema_name -> ()
  | _ -> raise (Json.Parse_error "not a smod-bench-gates document"));
  (match Json.get_int (Json.member_exn "schema_version" j) with
  | v when v = gates_schema_version -> ()
  | v ->
      raise
        (Json.Parse_error
           (Printf.sprintf "gates schema_version %d unsupported (want %d)" v
              gates_schema_version)));
  validate_gates
    {
      g_mean_rel = Json.get_float (Json.member_exn "mean_rel" j);
      g_p99_rel = Json.get_float (Json.member_exn "p99_rel" j);
      g_abs_eps = Json.get_float (Json.member_exn "abs_eps" j);
      g_abs_eps_for =
        (match Json.member "abs_eps_for" j with
        | None | Some Json.Null -> []
        | Some (Json.Obj fields) -> List.map (fun (id, v) -> (id, Json.get_float v)) fields
        | Some _ -> raise (Json.Parse_error "gates: abs_eps_for must be an object"));
      (* Optional: absent in pre-e21 gates files, so schema_version stays 1. *)
      g_rel_for =
        (match Json.member "rel_for" j with
        | None | Some Json.Null -> []
        | Some (Json.Obj fields) ->
            List.map
              (fun (id, v) ->
                ( id,
                  ( Json.get_float (Json.member_exn "mean_rel" v),
                    Json.get_float (Json.member_exn "p99_rel" v) ) ))
              fields
        | Some _ -> raise (Json.Parse_error "gates: rel_for must be an object"));
    }

let gates_of_string s = gates_of_json (Json.of_string s)
let gates_to_string g = Json.to_string (gates_to_json g) ^ "\n"

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

type status = Pass | Fail | Skipped

type row_result = {
  rr_experiment : string;
  rr_label : string;
  rr_metric : metric;
  rr_base : float;
  rr_cur : float option;  (** [None]: the row is missing in current — skipped *)
  rr_rel_tol : float;  (** the relative tolerance this row was judged with *)
  rr_abs_eps : float;  (** the additive epsilon this row was judged with *)
  rr_status : status;
}

type result = {
  rows : row_result list;  (* baseline document order *)
  compared : int;  (* rows present in both documents *)
  failed : int;
  skipped : int;  (* baseline rows with no counterpart *)
  extra : string list;  (* "<exp>/<label>" only in current *)
}

let ok r = r.compared > 0 && r.failed = 0

let key id label = id ^ "/" ^ label

let rows_by_key (doc : Bench_json.doc) =
  List.concat_map
    (fun (e : Bench_json.experiment) ->
      List.map (fun (r : Bench_json.row) -> (key e.e_id r.r_label, (e, r))) e.e_rows)
    doc.experiments

(* A compared row passes when |cur - base| <= abs_eps + rel_tol * |base|,
   rel_tol picked by the row's metric class.  The additive epsilon keeps
   exact-zero baseline rows (the E12 private-handle queue depths) from
   turning any change into an infinite relative drift. *)
let compare_docs ?(gates = default_gates) ~(baseline : Bench_json.doc)
    ~(current : Bench_json.doc) () =
  let base_rows = rows_by_key baseline and cur_rows = rows_by_key current in
  let rows =
    List.map
      (fun (k, ((e : Bench_json.experiment), (br : Bench_json.row))) ->
        let rr_metric = metric_of_label br.r_label in
        let mean_rel, p99_rel =
          match List.assoc_opt e.e_id gates.g_rel_for with
          | Some pair -> pair
          | None -> (gates.g_mean_rel, gates.g_p99_rel)
        in
        let rr_rel_tol = match rr_metric with Mean -> mean_rel | P99 -> p99_rel in
        let rr_abs_eps =
          match List.assoc_opt e.e_id gates.g_abs_eps_for with
          | Some eps -> eps
          | None -> gates.g_abs_eps
        in
        let rr_cur, rr_status =
          match List.assoc_opt k cur_rows with
          | None -> (None, Skipped)
          | Some (_, (cr : Bench_json.row)) ->
              let within =
                Float.abs (cr.r_mean -. br.r_mean)
                <= rr_abs_eps +. (rr_rel_tol *. Float.abs br.r_mean)
              in
              (Some cr.r_mean, if within then Pass else Fail)
        in
        {
          rr_experiment = e.e_id;
          rr_label = br.r_label;
          rr_metric;
          rr_base = br.r_mean;
          rr_cur;
          rr_rel_tol;
          rr_abs_eps;
          rr_status;
        })
      base_rows
  in
  let extra =
    List.filter_map
      (fun (k, _) -> if List.mem_assoc k base_rows then None else Some k)
      cur_rows
  in
  let count st = List.length (List.filter (fun r -> r.rr_status = st) rows) in
  {
    rows;
    compared = count Pass + count Fail;
    failed = count Fail;
    skipped = count Skipped;
    extra;
  }

(* ------------------------------------------------------------------ *)
(* Report rendering                                                    *)
(* ------------------------------------------------------------------ *)

let render ?(gates = default_gates) (r : result) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun rr ->
      let status =
        match rr.rr_status with Pass -> "ok" | Fail -> "FAIL" | Skipped -> "skip"
      in
      let metric = match rr.rr_metric with Mean -> "mean" | P99 -> "p99" in
      let eps_note =
        if rr.rr_abs_eps = gates.g_abs_eps then ""
        else Printf.sprintf "  [eps %g]" rr.rr_abs_eps
      in
      match rr.rr_cur with
      | None ->
          Buffer.add_string buf
            (Printf.sprintf "  %-4s %-4s %-4s %-40s base %12.4f  (row missing in current)\n"
               status rr.rr_experiment metric rr.rr_label rr.rr_base)
      | Some cur ->
          let delta_pct =
            if rr.rr_base = 0.0 then Float.abs (cur -. rr.rr_base) *. 100.0
            else (cur -. rr.rr_base) /. Float.abs rr.rr_base *. 100.0
          in
          Buffer.add_string buf
            (Printf.sprintf
               "  %-4s %-4s %-4s %-40s base %12.4f  cur %12.4f  (%+.3f%% @ %.3g%%)%s\n"
               status rr.rr_experiment metric rr.rr_label rr.rr_base cur delta_pct
               (rr.rr_rel_tol *. 100.0) eps_note))
    r.rows;
  List.iter
    (fun k -> Buffer.add_string buf (Printf.sprintf "  note  only in current:  %s\n" k))
    r.extra;
  Buffer.add_string buf
    (Printf.sprintf "benchdiff: %d compared (%d failed), %d skipped, %d only-in-current\n"
       r.compared r.failed r.skipped (List.length r.extra));
  Buffer.contents buf
