(* Machine-readable bench artifacts: a versioned JSON document holding
   every experiment row the harness prints plus a snapshot of the metric
   registry, and the drift comparison that CI gates on. *)

module Json = Smod_util.Json
module Cost = Smod_sim.Cost_model

let schema_name = "smod-bench"

(* v2 (PR 6): dated-baseline snapshots — the header carries capture
   metadata (date, commit, jobs, captured sections) so a snapshot under
   bench/baselines/ is self-describing and the trajectory can be rebuilt
   from the files alone. *)
let schema_version = 2

type row = { r_label : string; r_unit : string; r_mean : float; r_stdev : float }
type experiment = { e_id : string; e_title : string; e_rows : row list }

type meta = {
  mt_date : string;  (* "YYYY-MM-DD", UTC *)
  mt_commit : string;  (* git short sha, or "nogit" *)
  mt_jobs : int;
  mt_sections : string list;
}

type doc = {
  mode : string;
  meta : meta option;
  experiments : experiment list;
  metrics : Smod_metrics.snapshot;
}

let row ~label ?(unit_ = "us/call") ~mean ~stdev () =
  { r_label = label; r_unit = unit_; r_mean = mean; r_stdev = stdev }

let row_of_trial ?(unit_ = "us/call") (r : Trial.row) =
  {
    r_label = r.Trial.spec.Trial.name;
    r_unit = unit_;
    r_mean = r.Trial.mean_us;
    r_stdev = r.Trial.stdev_us;
  }

let rows_of_entries ?(unit_ = "us/call") entries =
  List.map
    (fun (e : Ablations.entry) ->
      { r_label = e.Ablations.label; r_unit = unit_; r_mean = e.mean_us; r_stdev = e.stdev_us })
    entries

let experiment ~id ~title rows = { e_id = id; e_title = title; e_rows = rows }

(* ------------------------------------------------------------------ *)
(* Serialisation                                                       *)
(* ------------------------------------------------------------------ *)

let json_of_row r =
  Json.Obj
    [
      ("label", Json.String r.r_label);
      ("unit", Json.String r.r_unit);
      ("mean", Json.Float r.r_mean);
      ("stdev", Json.Float r.r_stdev);
    ]

let json_of_experiment e =
  Json.Obj
    [
      ("id", Json.String e.e_id);
      ("title", Json.String e.e_title);
      ("rows", Json.Arr (List.map json_of_row e.e_rows));
    ]

let json_of_metric (name, sample) =
  match (sample : Smod_metrics.sample) with
  | Smod_metrics.Counter_sample v ->
      Json.Obj
        [ ("name", Json.String name); ("kind", Json.String "counter"); ("value", Json.Int v) ]
  | Smod_metrics.Histogram_sample h ->
      Json.Obj
        [
          ("name", Json.String name);
          ("kind", Json.String "histogram");
          ("edges", Json.Arr (Array.to_list (Array.map (fun e -> Json.Float e) h.hs_edges)));
          ("counts", Json.Arr (Array.to_list (Array.map (fun c -> Json.Int c) h.hs_counts)));
          ("count", Json.Int h.hs_count);
          ("sum", Json.Float h.hs_sum);
          (* Interpolated latency quantiles (PR 3 satellite): readable
             straight off the artifact without re-deriving them from the
             buckets.  [of_json] ignores them — the counts stay the
             source of truth. *)
          ("p50", Json.Float (Smod_metrics.snapshot_quantile h 0.5));
          ("p90", Json.Float (Smod_metrics.snapshot_quantile h 0.9));
          ("p99", Json.Float (Smod_metrics.snapshot_quantile h 0.99));
        ]

let json_of_meta m =
  Json.Obj
    [
      ("date", Json.String m.mt_date);
      ("commit", Json.String m.mt_commit);
      ("jobs", Json.Int m.mt_jobs);
      ("sections", Json.Arr (List.map (fun s -> Json.String s) m.mt_sections));
    ]

let to_json doc =
  Json.Obj
    ([
       ("schema", Json.String schema_name);
       ("schema_version", Json.Int schema_version);
       ("mode", Json.String doc.mode);
     ]
    @ (match doc.meta with Some m -> [ ("meta", json_of_meta m) ] | None -> [])
    @ [
      ( "testbed",
        Json.Obj
          [ ("mhz", Json.Float Cost.mhz); ("cycles_per_us", Json.Float Cost.cycles_per_us) ] );
      ("experiments", Json.Arr (List.map json_of_experiment doc.experiments));
      ("metrics", Json.Arr (List.map json_of_metric doc.metrics));
    ])

let to_string doc = Json.to_string (to_json doc) ^ "\n"

(* ------------------------------------------------------------------ *)
(* Deserialisation                                                     *)
(* ------------------------------------------------------------------ *)

let row_of_json j =
  {
    r_label = Json.get_string (Json.member_exn "label" j);
    r_unit = Json.get_string (Json.member_exn "unit" j);
    r_mean = Json.get_float (Json.member_exn "mean" j);
    r_stdev = Json.get_float (Json.member_exn "stdev" j);
  }

let experiment_of_json j =
  {
    e_id = Json.get_string (Json.member_exn "id" j);
    e_title = Json.get_string (Json.member_exn "title" j);
    e_rows = List.map row_of_json (Json.to_list (Json.member_exn "rows" j));
  }

let metric_of_json j =
  let name = Json.get_string (Json.member_exn "name" j) in
  match Json.get_string (Json.member_exn "kind" j) with
  | "counter" -> (name, Smod_metrics.Counter_sample (Json.get_int (Json.member_exn "value" j)))
  | "histogram" ->
      ( name,
        Smod_metrics.Histogram_sample
          {
            Smod_metrics.hs_edges =
              Array.of_list
                (List.map Json.get_float (Json.to_list (Json.member_exn "edges" j)));
            hs_counts =
              Array.of_list (List.map Json.get_int (Json.to_list (Json.member_exn "counts" j)));
            hs_count = Json.get_int (Json.member_exn "count" j);
            hs_sum = Json.get_float (Json.member_exn "sum" j);
          } )
  | kind -> raise (Json.Parse_error (Printf.sprintf "unknown metric kind %S" kind))

let meta_of_json j =
  {
    mt_date = Json.get_string (Json.member_exn "date" j);
    mt_commit = Json.get_string (Json.member_exn "commit" j);
    mt_jobs = Json.get_int (Json.member_exn "jobs" j);
    mt_sections = List.map Json.get_string (Json.to_list (Json.member_exn "sections" j));
  }

let of_json j =
  (match Json.member "schema" j with
  | Some (Json.String s) when s = schema_name -> ()
  | _ -> raise (Json.Parse_error "not a smod-bench document"));
  (* A version mismatch is a hard error, never a best-effort read: a v1
     snapshot has no capture metadata and would silently compare as an
     undated document. *)
  (match Json.get_int (Json.member_exn "schema_version" j) with
  | v when v = schema_version -> ()
  | v ->
      raise
        (Json.Parse_error
           (Printf.sprintf
              "schema_version %d unsupported (want %d) — regenerate the snapshot with \
               `smodctl bench capture` (or `bench --json`)"
              v schema_version)));
  {
    mode = Json.get_string (Json.member_exn "mode" j);
    meta = Option.map meta_of_json (Json.member "meta" j);
    experiments =
      List.map experiment_of_json (Json.to_list (Json.member_exn "experiments" j));
    metrics = List.map metric_of_json (Json.to_list (Json.member_exn "metrics" j));
  }

let of_string s = of_json (Json.of_string s)

(* The drift comparison that used to live here is now lib/bench_kit/diff.ml
   (benchdiff v2): per-metric gates, skipped-row reporting, gates.json. *)
