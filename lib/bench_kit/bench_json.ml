(* Machine-readable bench artifacts: a versioned JSON document holding
   every experiment row the harness prints plus a snapshot of the metric
   registry, and the drift comparison that CI gates on. *)

module Json = Smod_util.Json
module Cost = Smod_sim.Cost_model

let schema_name = "smod-bench"
let schema_version = 1

type row = { r_label : string; r_unit : string; r_mean : float; r_stdev : float }
type experiment = { e_id : string; e_title : string; e_rows : row list }

type doc = {
  mode : string;
  experiments : experiment list;
  metrics : Smod_metrics.snapshot;
}

let row ~label ?(unit_ = "us/call") ~mean ~stdev () =
  { r_label = label; r_unit = unit_; r_mean = mean; r_stdev = stdev }

let row_of_trial ?(unit_ = "us/call") (r : Trial.row) =
  {
    r_label = r.Trial.spec.Trial.name;
    r_unit = unit_;
    r_mean = r.Trial.mean_us;
    r_stdev = r.Trial.stdev_us;
  }

let rows_of_entries ?(unit_ = "us/call") entries =
  List.map
    (fun (e : Ablations.entry) ->
      { r_label = e.Ablations.label; r_unit = unit_; r_mean = e.mean_us; r_stdev = e.stdev_us })
    entries

let experiment ~id ~title rows = { e_id = id; e_title = title; e_rows = rows }

(* ------------------------------------------------------------------ *)
(* Serialisation                                                       *)
(* ------------------------------------------------------------------ *)

let json_of_row r =
  Json.Obj
    [
      ("label", Json.String r.r_label);
      ("unit", Json.String r.r_unit);
      ("mean", Json.Float r.r_mean);
      ("stdev", Json.Float r.r_stdev);
    ]

let json_of_experiment e =
  Json.Obj
    [
      ("id", Json.String e.e_id);
      ("title", Json.String e.e_title);
      ("rows", Json.Arr (List.map json_of_row e.e_rows));
    ]

let json_of_metric (name, sample) =
  match (sample : Smod_metrics.sample) with
  | Smod_metrics.Counter_sample v ->
      Json.Obj
        [ ("name", Json.String name); ("kind", Json.String "counter"); ("value", Json.Int v) ]
  | Smod_metrics.Histogram_sample h ->
      Json.Obj
        [
          ("name", Json.String name);
          ("kind", Json.String "histogram");
          ("edges", Json.Arr (Array.to_list (Array.map (fun e -> Json.Float e) h.hs_edges)));
          ("counts", Json.Arr (Array.to_list (Array.map (fun c -> Json.Int c) h.hs_counts)));
          ("count", Json.Int h.hs_count);
          ("sum", Json.Float h.hs_sum);
          (* Interpolated latency quantiles (PR 3 satellite): readable
             straight off the artifact without re-deriving them from the
             buckets.  [of_json] ignores them — the counts stay the
             source of truth. *)
          ("p50", Json.Float (Smod_metrics.snapshot_quantile h 0.5));
          ("p90", Json.Float (Smod_metrics.snapshot_quantile h 0.9));
          ("p99", Json.Float (Smod_metrics.snapshot_quantile h 0.99));
        ]

let to_json doc =
  Json.Obj
    [
      ("schema", Json.String schema_name);
      ("schema_version", Json.Int schema_version);
      ("mode", Json.String doc.mode);
      ( "testbed",
        Json.Obj
          [ ("mhz", Json.Float Cost.mhz); ("cycles_per_us", Json.Float Cost.cycles_per_us) ] );
      ("experiments", Json.Arr (List.map json_of_experiment doc.experiments));
      ("metrics", Json.Arr (List.map json_of_metric doc.metrics));
    ]

let to_string doc = Json.to_string (to_json doc) ^ "\n"

(* ------------------------------------------------------------------ *)
(* Deserialisation                                                     *)
(* ------------------------------------------------------------------ *)

let row_of_json j =
  {
    r_label = Json.get_string (Json.member_exn "label" j);
    r_unit = Json.get_string (Json.member_exn "unit" j);
    r_mean = Json.get_float (Json.member_exn "mean" j);
    r_stdev = Json.get_float (Json.member_exn "stdev" j);
  }

let experiment_of_json j =
  {
    e_id = Json.get_string (Json.member_exn "id" j);
    e_title = Json.get_string (Json.member_exn "title" j);
    e_rows = List.map row_of_json (Json.to_list (Json.member_exn "rows" j));
  }

let metric_of_json j =
  let name = Json.get_string (Json.member_exn "name" j) in
  match Json.get_string (Json.member_exn "kind" j) with
  | "counter" -> (name, Smod_metrics.Counter_sample (Json.get_int (Json.member_exn "value" j)))
  | "histogram" ->
      ( name,
        Smod_metrics.Histogram_sample
          {
            Smod_metrics.hs_edges =
              Array.of_list
                (List.map Json.get_float (Json.to_list (Json.member_exn "edges" j)));
            hs_counts =
              Array.of_list (List.map Json.get_int (Json.to_list (Json.member_exn "counts" j)));
            hs_count = Json.get_int (Json.member_exn "count" j);
            hs_sum = Json.get_float (Json.member_exn "sum" j);
          } )
  | kind -> raise (Json.Parse_error (Printf.sprintf "unknown metric kind %S" kind))

let of_json j =
  (match Json.member "schema" j with
  | Some (Json.String s) when s = schema_name -> ()
  | _ -> raise (Json.Parse_error "not a smod-bench document"));
  (match Json.get_int (Json.member_exn "schema_version" j) with
  | v when v = schema_version -> ()
  | v ->
      raise
        (Json.Parse_error
           (Printf.sprintf "schema_version %d unsupported (want %d)" v schema_version)));
  {
    mode = Json.get_string (Json.member_exn "mode" j);
    experiments =
      List.map experiment_of_json (Json.to_list (Json.member_exn "experiments" j));
    metrics = List.map metric_of_json (Json.to_list (Json.member_exn "metrics" j));
  }

let of_string s = of_json (Json.of_string s)

(* ------------------------------------------------------------------ *)
(* Drift comparison (the CI gate)                                      *)
(* ------------------------------------------------------------------ *)

type drift = {
  d_experiment : string;
  d_label : string;
  d_base : float;
  d_cur : float;
  d_ok : bool;
  d_abs_eps : float;  (** the additive epsilon this row was judged with *)
}

type comparison = {
  compared : int;
  drifts : drift list;  (** rows present in both documents, one entry each *)
  missing : string list;  (** "<exp>/<label>" in baseline but not current *)
  extra : string list;  (** in current but not baseline *)
}

let comparison_ok c = c.compared > 0 && List.for_all (fun d -> d.d_ok) c.drifts

let key e r = e.e_id ^ "/" ^ r.r_label

let rows_by_key doc =
  List.concat_map (fun e -> List.map (fun r -> (key e r, (e, r))) e.e_rows) doc.experiments

(* A row passes when |cur - base| <= abs_eps + rel_tol * |base|.  The
   additive epsilon keeps exact-zero baseline rows (e.g. the E12 private
   handle queue depths) from turning any change into an infinite relative
   drift.  [abs_eps_for] overrides the epsilon per experiment id — some
   experiments (queue-depth counts, sub-microsecond ring rows) need a
   looser or tighter absolute band than the document-wide default; each
   drift records the epsilon it was judged with so reports can show
   which rows ran under an override. *)
let compare_docs ?(rel_tol = 0.02) ?(abs_eps = 1e-9) ?(abs_eps_for = []) ~baseline ~current ()
    =
  let base_rows = rows_by_key baseline and cur_rows = rows_by_key current in
  let drifts =
    List.filter_map
      (fun (k, (e, br)) ->
        match List.assoc_opt k cur_rows with
        | None -> None
        | Some (_, cr) ->
            let eps =
              match List.assoc_opt e.e_id abs_eps_for with Some e -> e | None -> abs_eps
            in
            let ok =
              Float.abs (cr.r_mean -. br.r_mean) <= eps +. (rel_tol *. Float.abs br.r_mean)
            in
            Some
              {
                d_experiment = e.e_id;
                d_label = br.r_label;
                d_base = br.r_mean;
                d_cur = cr.r_mean;
                d_ok = ok;
                d_abs_eps = eps;
              })
      base_rows
  in
  let missing =
    List.filter_map
      (fun (k, _) -> if List.mem_assoc k cur_rows then None else Some k)
      base_rows
  in
  let extra =
    List.filter_map
      (fun (k, _) -> if List.mem_assoc k base_rows then None else Some k)
      cur_rows
  in
  { compared = List.length drifts; drifts; missing; extra }
