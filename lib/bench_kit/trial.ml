module Clock = Smod_sim.Clock
module Stats = Smod_util.Stats
module Rng = Smod_util.Rng
module Table = Smod_util.Table

type spec = { name : string; calls_per_trial : int; trials : int; warmup : int }

type row = { spec : spec; mean_us : float; stdev_us : float; trial_means : float array }

(* Thousands separators for the calls/trial column, e.g. 1,000,000. *)
let with_commas n =
  let s = string_of_int n in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let default_noise = 0.012
let default_noise_seed = 0xBE7C4A1L

(* Per-trial load factor, derived from (noise_seed, trial) alone: trial k's
   factor does not depend on how many earlier trials consumed the stream —
   reordering, skipping, or running trials on different domains leaves
   every other trial's mean untouched.  (The previous design drew all
   factors from ONE sequential Rng, so dropping trial 0 silently changed
   every later trial.) *)
let noise_factor ~noise ~noise_seed ~trial =
  if noise = 0.0 then 1.0
  else
    let rng = Rng.create (Int64.add noise_seed (Int64.of_int trial)) in
    Rng.gaussian rng ~mu:1.0 ~sigma:noise

let apply_noise ~noise ~noise_seed ~trial per_call =
  per_call *. Float.max 0.5 (noise_factor ~noise ~noise_seed ~trial)

let run_one ~clock ?(noise = default_noise) ?(noise_seed = default_noise_seed) ~trial spec f
    =
  for i = 1 to spec.warmup do
    f (-i)
  done;
  let t0 = Clock.now_cycles clock in
  for i = 0 to spec.calls_per_trial - 1 do
    f ((trial * spec.calls_per_trial) + i)
  done;
  let per_call = Clock.elapsed_us clock ~since:t0 /. float_of_int spec.calls_per_trial in
  apply_noise ~noise ~noise_seed ~trial per_call

let row_of_means spec trial_means =
  {
    spec;
    mean_us = Stats.mean trial_means;
    stdev_us = Stats.stdev trial_means;
    trial_means;
  }

let run ~clock ?(noise = default_noise) ?(noise_seed = default_noise_seed) spec f =
  for i = 1 to spec.warmup do
    f (-i)
  done;
  let trial_means =
    Array.init spec.trials (fun trial ->
        let t0 = Clock.now_cycles clock in
        for i = 0 to spec.calls_per_trial - 1 do
          f ((trial * spec.calls_per_trial) + i)
        done;
        let per_call = Clock.elapsed_us clock ~since:t0 /. float_of_int spec.calls_per_trial in
        apply_noise ~noise ~noise_seed ~trial per_call)
  in
  row_of_means spec trial_means

let figure8_table rows =
  let counts = Table.create [ "Test"; "Number of Calls/Trial"; "Total Number of Trials" ] in
  List.iter
    (fun r ->
      Table.add_row counts
        [ r.spec.name; with_commas r.spec.calls_per_trial; string_of_int r.spec.trials ])
    rows;
  let results = Table.create [ "Test Function"; "microsec/CALL"; "stdev(microsec)" ] in
  List.iter
    (fun r ->
      Table.add_row results
        [ r.spec.name; Printf.sprintf "%.6f" r.mean_us; Printf.sprintf "%.8f" r.stdev_us ])
    rows;
  Table.render counts ^ "\n" ^ Table.render results

let generic_table ~title ~header rows =
  let t = Table.create header in
  List.iter (Table.add_row t) rows;
  Printf.sprintf "== %s ==\n%s" title (Table.render t)
