(* E21: the sharded control plane under load.

   E20 answered "how far does K independent kernels scale?"; E21 answers
   what it costs to make them one deployment.  A Coordinator
   (lib/cluster) owns the keystore generation and policy revisions over
   K shard kernels; this experiment measures the three prices that
   control plane charges:

   - Steady state: consistent-hash placement plus (in lazy mode) a
     ~15-cycle epoch check per dispatch.  The scaling cells re-run the
     E20 sweep through the cluster path; staying within a few percent of
     E20's independent-shard aggregate is the acceptance bar.

   - Coherence: a rotation storm (storm_rotations keystore rotations
     published between every pair of rounds) with both modes at K=8.
     Eager broadcast applies ops at publish and each shard pays the
     control-message handling cost on its next dispatch; lazy coalesces
     the whole storm into one sync on the first dispatch after staleness.
     The storm p99 contrast between the modes is the headline trade-off.

   - Movement: reshard churn (consistent-hash vs FNV mod-K on K=4->5),
     balance under Zipf-skewed tenant weights (single-hash vs
     power-of-two-choices), and a live migration timed end to end
     (drain + scrub on the source, pooled re-attach on the destination).

   Clients run in rounds separated by barriers — each client parks as a
   daemon between rounds and the driver wakes it per round — so storm
   publishes land between rounds, exactly like control-plane writes
   arriving while a real shard is busy elsewhere.  All K shards of one
   cell share one coordinator (mutable, single-domain), so a task is a
   whole (cell, trial); parallelism comes from cells x trials. *)

module Machine = Smod_kern.Machine
module Proc = Smod_kern.Proc
module Sched = Smod_kern.Sched
module Clock = Smod_sim.Clock
module Stats = Smod_util.Stats
module Coordinator = Smod_cluster.Coordinator
module Placement = Smod_cluster.Placement
module Migrate = Smod_cluster.Migrate

type transport = Msgq | Ring

let transport_name = function Msgq -> "msgq" | Ring -> "ring"

type config = {
  shard_counts : int list;  (* scaling sweep *)
  clients : int;  (* tenant population, fixed across shard counts *)
  rounds : int;  (* barrier-separated rounds per cell *)
  calls_per_round : int;  (* per client; a multiple of [batch] for Ring *)
  batch : int;  (* ring batch size *)
  storm_shards : int;  (* K for the rotation-storm cells *)
  storm_rotations : int;  (* publishes between each pair of rounds *)
  migration_sessions : int;  (* sessions the migrated tenant holds *)
  trials : int;
}

let default_config =
  {
    shard_counts = [ 1; 2; 4; 8 ];
    clients = 32;
    rounds = 8;
    calls_per_round = 16;
    batch = 16;
    storm_shards = 8;
    (* Heavy enough that eager's per-message handling debt (rotations x
       Coord_ctrl_recv on the first dispatch after the gap) clears the
       natural queueing tail on both transports, while lazy's single
       coalesced sync stays under it — the contrast the storm cells
       exist to show. *)
    storm_rotations = 24;
    migration_sessions = 4;
    trials = 3;
  }

let tenant_names n = List.init n (Printf.sprintf "tenant-%03d")

(* Like E16/E20's smodd shape, but sized for resident tenants: E21's
   clients hold their sessions across every round (parking at barriers
   instead of detaching), so a K=1 cell needs a handle for each of the
   [clients] tenants at once or admission deadlocks. *)
let pool_config =
  {
    Smod_pool.Smodd.default_config with
    max_handles_per_module = 32;
    max_total_handles = 32;
    max_queue_depth = 128;
  }

(* ------------------------------------------------------------------ *)
(* Cell specs and task plan                                            *)
(* ------------------------------------------------------------------ *)

type spec =
  | Scale of { shards : int; transport : transport }
      (* lazy mode, no storm: the steady-state cluster tax *)
  | Storm of { transport : transport; mode : Coordinator.mode }
      (* K = storm_shards, rotation storm between rounds *)
  | Placement_stats  (* pure computation: reshard churn, Zipf balance *)
  | Migration  (* K=2 msgq: drain + scrub + re-attach, timed *)

type cell_result = {
  cr_rate : float;  (* aggregate kcalls/s, sum of per-shard rates *)
  cr_samples : float array;  (* pooled client-observed per-call us *)
  cr_prop : float array;  (* pooled per-op propagation samples, us *)
}

type task_result = R_cell of cell_result | R_stats of (string * float) list

let barrier () = Effect.perform (Sched.Block (Sched.Custom "e21-round"))

(* ------------------------------------------------------------------ *)
(* Workload cells (Scale / Storm)                                      *)
(* ------------------------------------------------------------------ *)

type bench_shard = {
  bs_world : World.t;
  bs_sh : Coordinator.shard;
  bs_pids : int list ref;
  bs_samples : float list ref;
  bs_calls : int ref;
}

let run_workload ~cfg ~rounds ~cell ~trial ~shards ~transport ~mode ~storm =
  let coord = Coordinator.create ~mode () in
  let mk shard =
    let seed = Int64.of_int (9000 + (997 * trial) + (131 * shards) + (17 * shard) + (7 * cell)) in
    let world = World.create ~seed ~pool:pool_config ~with_rpc:false () in
    let sh = Coordinator.add_shard coord world.World.smod in
    { bs_world = world; bs_sh = sh; bs_pids = ref []; bs_samples = ref []; bs_calls = ref 0 }
  in
  let cluster = List.init shards mk in
  let shard_of = Array.of_list cluster in
  (* Tenants land where the coordinator routes them — consistent-hash
     placement, the same decision a router replica would make. *)
  List.iter
    (fun name ->
      let bs = shard_of.(Coordinator.route coord name) in
      let clock = Machine.clock bs.bs_world.World.machine in
      World.spawn_seclibc_client bs.bs_world ~name ~principal:name (fun p conn ->
          bs.bs_pids := p.Proc.pid :: !(bs.bs_pids);
          p.Proc.daemon <- true;
          match transport with
          | Msgq ->
              for _round = 1 to rounds do
                barrier ();
                for j = 1 to cfg.calls_per_round do
                  let t0 = Clock.now_cycles clock in
                  ignore (Smod_libc.Seclibc.Client.test_incr conn j);
                  bs.bs_samples := Clock.elapsed_us clock ~since:t0 :: !(bs.bs_samples);
                  incr bs.bs_calls
                done
              done
          | Ring ->
              ignore (Secmodule.Stub.arm_ring conn);
              let argss = List.init cfg.batch (fun i -> [| i |]) in
              for _round = 1 to rounds do
                barrier ();
                for _b = 1 to cfg.calls_per_round / cfg.batch do
                  let t0 = Clock.now_cycles clock in
                  ignore (Secmodule.Stub.call_batch conn ~func:"test_incr" argss);
                  bs.bs_samples :=
                    (Clock.elapsed_us clock ~since:t0 /. float_of_int cfg.batch)
                    :: !(bs.bs_samples);
                  bs.bs_calls := !(bs.bs_calls) + cfg.batch
                done
              done))
    (tenant_names cfg.clients);
  (* Attach everyone and park at the first barrier. *)
  List.iter (fun bs -> World.run bs.bs_world) cluster;
  for round = 1 to rounds do
    if storm && round > 1 then
      for i = 1 to cfg.storm_rotations do
        Coordinator.publish coord
          (Coordinator.Rotate_key
             { name = "storm-key"; secret = Printf.sprintf "sk-%d-%d" round i })
      done;
    List.iter
      (fun bs ->
        List.iter (Machine.wakeup bs.bs_world.World.machine) !(bs.bs_pids);
        World.run bs.bs_world)
      cluster
  done;
  let rate bs =
    let us = Clock.now_us (Machine.clock bs.bs_world.World.machine) in
    if us <= 0.0 then 0.0 else float_of_int !(bs.bs_calls) *. 1_000.0 /. us
  in
  {
    cr_rate = List.fold_left (fun acc bs -> acc +. rate bs) 0.0 cluster;
    cr_samples =
      Array.concat (List.map (fun bs -> Array.of_list (List.rev !(bs.bs_samples))) cluster);
    cr_prop =
      Array.concat
        (List.map (fun bs -> Array.of_list (Coordinator.propagation_us bs.bs_sh)) cluster);
  }

(* ------------------------------------------------------------------ *)
(* Placement statistics (pure)                                         *)
(* ------------------------------------------------------------------ *)

let zipf_s = 0.9
let placement_population = 256

let placement_stats () =
  let pop = tenant_names placement_population in
  let n = float_of_int placement_population in
  let r4 = Placement.create [ 0; 1; 2; 3 ] in
  let r5 = Placement.add_shard r4 4 in
  let moved_ch = Placement.moved ~before:r4 ~after:r5 pop in
  let moved_fnv =
    List.length
      (List.filter
         (fun k -> Smod_pool.Shard.place ~shards:4 k <> Smod_pool.Shard.place ~shards:5 k)
         pop)
  in
  (* Zipf-weighted tenants over K=8: single-hash placement ignores load;
     p2c places each tenant on the lighter of its two candidates, seeing
     the load of everything placed before it (heaviest first, the way a
     rebalancer would admit them). *)
  let r8 = Placement.create (List.init 8 Fun.id) in
  let weights = List.mapi (fun i k -> (k, 1.0 /. ((float_of_int i +. 1.0) ** zipf_s))) pop in
  let total = List.fold_left (fun a (_, w) -> a +. w) 0.0 weights in
  let ideal = total /. 8.0 in
  let loads_hash = Array.make 8 0.0 in
  List.iter
    (fun (k, w) ->
      let s = Placement.place r8 k in
      loads_hash.(s) <- loads_hash.(s) +. w)
    weights;
  let loads_p2c = Array.make 8 0.0 in
  List.iter
    (fun (k, w) ->
      let s =
        Placement.place_p2c r8 ~load:(fun i -> int_of_float (loads_p2c.(i) *. 1e6)) k
      in
      loads_p2c.(s) <- loads_p2c.(s) +. w)
    (List.sort (fun (_, a) (_, b) -> compare b a) weights);
  let max_of = Array.fold_left max 0.0 in
  [
    ("reshard 4->5 moved, consistent-hash (%)", 100.0 *. float_of_int moved_ch /. n);
    ("reshard 4->5 moved, fnv mod-K (%)", 100.0 *. float_of_int moved_fnv /. n);
    ("zipf max/ideal, hash-only", max_of loads_hash /. ideal);
    ("zipf max/ideal, p2c", max_of loads_p2c /. ideal);
  ]

(* ------------------------------------------------------------------ *)
(* Live migration (timed)                                              *)
(* ------------------------------------------------------------------ *)

let run_migration ~cfg ~trial =
  let coord = Coordinator.create ~mode:Coordinator.Lazy () in
  let mk shard =
    let seed = Int64.of_int (9500 + (997 * trial) + (17 * shard)) in
    let world = World.create ~seed ~pool:pool_config ~with_rpc:false () in
    ignore (Coordinator.add_shard coord world.World.smod);
    world
  in
  let w0 = mk 0 in
  let w1 = mk 1 in
  let tenant = List.find (fun n -> Coordinator.route coord n = 0) (tenant_names cfg.clients) in
  for i = 1 to cfg.migration_sessions do
    World.spawn_seclibc_client w0
      ~name:(Printf.sprintf "%s-c%d" tenant i)
      ~principal:tenant
      (fun p conn ->
        ignore (Smod_libc.Seclibc.Client.test_incr conn i);
        p.Proc.daemon <- true;
        barrier ())
  done;
  World.run w0;
  let c0 = Machine.clock w0.World.machine in
  let c1 = Machine.clock w1.World.machine in
  (* Drain + scrub on the source: Migrate.start detaches every session,
     then running the machine lets each pooled handle scrub and park. *)
  let t0 = Clock.now_cycles c0 in
  let mg = Migrate.start coord ~tenant ~to_shard:1 in
  World.run w0;
  let drain_us = Clock.elapsed_us c0 ~since:t0 in
  (* Re-attach on the destination through the ordinary pooled path. *)
  let t1 = Clock.now_cycles c1 in
  World.spawn_seclibc_client w1 ~name:(tenant ^ "-moved") ~principal:tenant (fun _p conn ->
      ignore (Smod_libc.Seclibc.Client.test_incr conn 1));
  World.run w1;
  Migrate.finish coord mg;
  let reattach_us = Clock.elapsed_us c1 ~since:t1 in
  [
    ("migration drain+scrub (us/session)", drain_us /. float_of_int cfg.migration_sessions);
    ("migration reattach (us)", reattach_us);
  ]

(* ------------------------------------------------------------------ *)
(* Harness                                                             *)
(* ------------------------------------------------------------------ *)

let cells cfg =
  List.map (fun shards -> Scale { shards; transport = Msgq }) cfg.shard_counts
  @ List.map (fun shards -> Scale { shards; transport = Ring }) cfg.shard_counts
  @ List.concat_map
      (fun transport ->
        [
          Storm { transport; mode = Coordinator.Eager };
          Storm { transport; mode = Coordinator.Lazy };
        ])
      [ Msgq; Ring ]
  @ [ Placement_stats; Migration ]

let trials_of cfg = function
  | Scale _ | Storm _ | Migration -> cfg.trials
  | Placement_stats -> 1  (* pure function of the ring: one task *)

let task_count cfg = List.fold_left (fun acc c -> acc + trials_of cfg c) 0 (cells cfg)

let run_task ~cfg (cell, spec, trial) =
  match spec with
  | Scale { shards; transport } ->
      (* 2x rounds: the scaling cells exist to compare against E20, so
         give the fixed attach cost comparable amortization; the storm
         cells keep [rounds] so the debt-carrying first-dispatch samples
         stay above the 1% p99 cut. *)
      R_cell
        (run_workload ~cfg ~rounds:(2 * cfg.rounds) ~cell ~trial ~shards ~transport
           ~mode:Coordinator.Lazy ~storm:false)
  | Storm { transport; mode } ->
      R_cell
        (run_workload ~cfg ~rounds:cfg.rounds ~cell ~trial ~shards:cfg.storm_shards ~transport
           ~mode ~storm:true)
  | Placement_stats -> R_stats (placement_stats ())
  | Migration -> R_stats (run_migration ~cfg ~trial)

let entry label values =
  Ablations.{ label; mean_us = Stats.mean values; stdev_us = Stats.stdev values }

let run ?(runner = Runner.sequential) ?(config = default_config) () =
  let cfg = config in
  let specs = List.mapi (fun i s -> (i, s)) (cells cfg) in
  let tasks =
    List.concat_map
      (fun (ci, spec) -> List.init (trials_of cfg spec) (fun trial -> (ci, spec, trial)))
      specs
  in
  let results = Runner.map runner tasks (run_task ~cfg) in
  let by_cell = Hashtbl.create 32 in
  List.iter2
    (fun (ci, _, _) r ->
      let prev = Option.value (Hashtbl.find_opt by_cell ci) ~default:[] in
      Hashtbl.replace by_cell ci (prev @ [ r ]))
    tasks results;
  let cell_trials ci =
    List.filter_map (function R_cell c -> Some c | R_stats _ -> None)
      (Option.value (Hashtbl.find_opt by_cell ci) ~default:[])
  in
  let stats_trials ci =
    List.filter_map (function R_stats s -> Some s | R_cell _ -> None)
      (Option.value (Hashtbl.find_opt by_cell ci) ~default:[])
  in
  List.concat_map
    (fun (ci, spec) ->
      match spec with
      | Scale { shards; transport } ->
          let trials = cell_trials ci in
          let rates = Array.of_list (List.map (fun c -> c.cr_rate) trials) in
          let p99s =
            Array.of_list (List.map (fun c -> Stats.percentile c.cr_samples 99.0) trials)
          in
          let name = transport_name transport in
          [
            entry (Printf.sprintf "%s K=%d aggregate (kcalls/s)" name shards) rates;
            entry (Printf.sprintf "%s K=%d p99 (us)" name shards) p99s;
          ]
      | Storm { transport; mode } ->
          let trials = cell_trials ci in
          let rates = Array.of_list (List.map (fun c -> c.cr_rate) trials) in
          let p99s =
            Array.of_list (List.map (fun c -> Stats.percentile c.cr_samples 99.0) trials)
          in
          let props = Array.of_list (List.map (fun c -> Stats.mean c.cr_prop) trials) in
          let name = transport_name transport in
          let m = Coordinator.mode_name mode in
          [
            entry
              (Printf.sprintf "%s K=%d %s storm aggregate (kcalls/s)" name cfg.storm_shards m)
              rates;
            entry (Printf.sprintf "%s K=%d %s storm p99 (us)" name cfg.storm_shards m) p99s;
            entry (Printf.sprintf "%s K=%d %s propagation (us)" name cfg.storm_shards m) props;
          ]
      | Placement_stats | Migration ->
          let trials = stats_trials ci in
          let labels = List.map fst (List.hd trials) in
          List.map
            (fun label ->
              entry label
                (Array.of_list (List.map (fun kvs -> List.assoc label kvs) trials)))
            labels)
    specs
