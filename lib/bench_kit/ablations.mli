(** Ablation benchmarks for the design claims the paper makes in prose.

    - {!policy_ablation} — §5: "If we need to evaluate more complex policy
      statements, we can expect a corresponding slowdown in proportion to
      the complexity of the required access control check."
    - {!marshal_ablation} — §3: an explicit-shared-memory design needs
      XDR-style copies per call and "precludes sharing of large amounts of
      data", unlike the full address-space share.
    - {!protection_ablation} — §4.1: encrypted text versus unmap-only
      protection (session setup pays the AES work; calls are unaffected).
    - {!handle_sharing} — §4.3: "Multiple clients should not share the
      handle, because a many-to-one mapping ... introduces a performance
      bottleneck."
    - {!toctou_cost} — §4.4: both anti-TOCTOU mitigations exist but
      "neither approach is very desirable in terms of client efficiency."

    Every experiment decomposes into independent (configuration, trial)
    tasks, each in a private world seeded from its own coordinates, so a
    {!Runner} can spread them across domains with results identical for
    any job count.  [runner] defaults to {!Runner.sequential}. *)

type entry = { label : string; mean_us : float; stdev_us : float }

val entry_of_means : string -> float array -> entry

val map_trials :
  Runner.t -> trials:int -> 'config list -> ('config -> trial:int -> 'a) -> ('config * 'a array) list
(** Decompose "[trials] trials of each configuration" into independent
    (configuration, trial) tasks, run them over the runner, and return
    each configuration's per-trial samples in configuration order —
    the decomposition every section here uses, exported for sections
    that live in their own module ({!Fused_bench}). *)

val policy_ablation : ?runner:Runner.t -> ?calls:int -> ?trials:int -> unit -> entry list
(** Per-call cost of SMOD(test-incr) under: always-allow, session-lifetime,
    call-quota, rate-limit, and KeyNote with 1, 4 and 16 assertions — the
    interpreted ladder first (labels unchanged from earlier baselines),
    then the keynote rungs again with
    {!Secmodule.Smod.set_policy_compile} on ([... compiled] labels). *)

val marshal_ablation :
  ?runner:Runner.t -> ?calls:int -> ?payload_sizes:int list -> unit -> entry list
(** For each payload size: per-call cost of passing a buffer by pointer on
    the shared stack versus copying it through the queue both ways. *)

val protection_ablation :
  ?runner:Runner.t -> ?text_sizes:int list -> ?trials:int -> unit -> entry list
(** Session-establishment cost, encrypted vs unmap-only, per text size. *)

val handle_sharing :
  ?runner:Runner.t -> ?clients:int list -> ?calls_per_client:int -> unit -> entry list
(** Mean request-queue depth observed at each service with K clients
    multiplexed onto one server loop versus K private server loops (the
    [mean_us] field holds the depth, not a time). *)

val toctou_cost : ?runner:Runner.t -> ?calls:int -> ?trials:int -> unit -> entry list
(** Per-call SMOD(test-incr) cost under each §4.4 mitigation. *)

val fast_path : ?runner:Runner.t -> ?calls:int -> ?trials:int -> unit -> entry list
(** E14 — the paper's §5 prediction that "its possible to gain even
    greater performance gains by reducing redundant error checks":
    per-call cost with and without {!Secmodule.Smod.set_call_fast_path}. *)

val systrace_overhead : ?runner:Runner.t -> ?calls:int -> ?trials:int -> unit -> entry list
(** E15 — the §2 syscall-interposition alternative: getpid() per-call
    cost bare versus under a systrace policy whose per-trap rule scan
    reaches the getpid rule last. *)

val pooling :
  ?runner:Runner.t ->
  ?sessions:int ->
  ?calls:int ->
  ?clients:int list ->
  ?trials:int ->
  unit ->
  entry list
(** E16 — smodd session pooling (lib/pool): session-establishment
    latency, cold fork-per-session versus warm pooled attach, then
    steady-state throughput (the [(kcalls/s)] rows hold kilo-calls per
    second, not microseconds) with 1 / 8 / 64 clients, cold versus
    pooled. *)

val render : title:string -> ?unit_header:string -> entry list -> string

val ring_dispatch :
  ?runner:Runner.t -> ?batches:int list -> ?rounds:int -> ?trials:int -> unit -> entry list
(** E18 — shared-memory dispatch rings (lib/ring): per-call latency of
    the test-incr workload over the legacy msgq transport versus the
    batched ring fast path, at batch sizes 1 / 4 / 16 / 64.  Two rows
    per (transport, batch): the mean and the p99 of the per-round
    per-call latency.  At batch 1 the ring must not lose; at batch 16
    it amortises the trap, wakeup and policy work across the batch. *)

val policy_compile_dispatch :
  ?runner:Runner.t ->
  ?assertions:int list ->
  ?batch:int ->
  ?rounds:int ->
  ?trials:int ->
  unit ->
  entry list
(** E19 — the compiled policy engine (lib/keynote/compile): per-call
    latency of test-incr under a volatile KeyNote ladder (the matching
    rung reads [calls_so_far], so smodd's decision cache cannot memoise
    the verdict and every slot pays a policy evaluation), at 1 / 4 / 16 /
    64 assertions, over both transports (plain msgq calls versus
    [batch]-slot ring batches) and both engines (interpreted walk versus
    compiled opcode program).  Two rows — mean and p99 — per
    (transport, assertion count, engine). *)
