(** The standard benchmark/example world: one simulated machine with the
    SecModule subsystem installed, the converted libc registered, and the
    RPC baseline (transport + portmapper + test-incr server) running. *)

type t = {
  machine : Smod_kern.Machine.t;
  smod : Secmodule.Smod.t;
  libc_entry : Secmodule.Registry.entry;
  transport : Smod_rpc.Transport.t;
  portmap : Smod_rpc.Portmap.t;
  rpc_port : int;
  pool : Smod_pool.Smodd.t option;
  registry : Smod_metrics.t;
      (** The metrics registry this world reports into — the creating
          domain's {!Smod_metrics.current} at creation time.  Drive the
          world on that same domain (the Runner gives each task world a
          fresh registry for exactly this reason). *)
}

val create :
  ?seed:int64 ->
  ?jitter:float ->
  ?protection:Secmodule.Registry.protection ->
  ?policy:Secmodule.Policy.t ->
  ?pool:Smod_pool.Smodd.config ->
  ?with_rpc:bool ->
  unit ->
  t
(** Spawns the RPC daemon unless [with_rpc] is false.  [pool] installs
    the smodd service layer with the given configuration before any
    module registration (sessions then attach to pooled handles). *)

val credential : ?principal:string -> t -> Secmodule.Credential.t
(** An unsigned credential naming [principal] (default "client"). *)

val spawn_seclibc_client :
  t -> name:string -> ?principal:string -> (Smod_kern.Proc.t -> Secmodule.Stub.conn -> unit) -> unit
(** Spawn a process that connects to seclibc through crt0 and runs the
    body; the session closes when the body returns. *)

val rpc_client : t -> Smod_kern.Proc.t -> client_port:int -> Smod_rpc.Client.t
val run : t -> unit
(** Drive the machine until everything except daemons has finished. *)
