(* Consistent-hash placement for the sharded control plane.

   The E20 router (Smod_pool.Shard.place) is FNV-1a mod K: perfect for a
   fixed shard count, catastrophic for resharding — changing K remaps
   almost every key.  A consistent-hash ring fixes that: each shard owns
   [vnodes] pseudo-random points on the 2^64 circle and a key lands on
   the first point clockwise from its hash, so adding or removing one
   shard only moves the keys in the arcs that shard gains or loses —
   ~1/(K+1) of them in expectation (test/test_cluster.ml pins the bound).

   Everything here is pure: a ring is an immutable value, and [place] is
   a function of (key, ring) alone, so router replicas on different
   domains agree without coordination — the same property E20 relied on,
   kept under resharding. *)

module Shard = Smod_pool.Shard

type ring = {
  vnodes : int;
  shards : int list;  (* sorted, distinct *)
  points : (int64 * int) array;  (* (point, shard id), sorted unsigned *)
}

let default_vnodes = 64

(* FNV-1a diffuses enough for mod-K bucketing but not for ring positions:
   points derived from similar strings keep similar high-order bits, so
   raw FNV vnodes cluster and one shard ends up owning nearly the whole
   circle.  A 64-bit avalanche finalizer (murmur3 fmix64) on top fixes
   the spread while keeping the underlying router hash unchanged. *)
let mix h =
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xff51afd7ed558ccdL in
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
  Int64.logxor h (Int64.shift_right_logical h 33)

let point ~shard ~vnode =
  mix (Shard.hash_salted ~salt:(Printf.sprintf "vn-%d" vnode) (Printf.sprintf "shard-%d" shard))

let create ?(vnodes = default_vnodes) shards =
  if shards = [] then invalid_arg "Placement.create: no shards";
  if vnodes < 1 then invalid_arg "Placement.create: vnodes must be >= 1";
  let shards = List.sort_uniq compare shards in
  let points =
    List.concat_map
      (fun s -> List.init vnodes (fun v -> (point ~shard:s ~vnode:v, s)))
      shards
    |> Array.of_list
  in
  Array.sort
    (fun (p1, s1) (p2, s2) ->
      match Int64.unsigned_compare p1 p2 with 0 -> compare s1 s2 | c -> c)
    points;
  { vnodes; shards; points }

let shards t = t.shards
let vnodes t = t.vnodes

(* First point with point >= h (unsigned), wrapping to index 0. *)
let successor t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.unsigned_compare (fst t.points.(mid)) h < 0 then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let place t key = snd t.points.(successor t (mix (Shard.hash key)))

let add_shard t id =
  if List.mem id t.shards then invalid_arg "Placement.add_shard: duplicate shard";
  create ~vnodes:t.vnodes (id :: t.shards)

let remove_shard t id =
  let rest = List.filter (fun s -> s <> id) t.shards in
  if List.length rest = List.length t.shards then
    invalid_arg "Placement.remove_shard: unknown shard";
  create ~vnodes:t.vnodes rest

let moved ~before ~after keys =
  List.fold_left (fun n k -> if place before k <> place after k then n + 1 else n) 0 keys

(* Power-of-two-choices: the ring's owner plus a second candidate from a
   salted hash; the less-loaded of the two wins (ties to the owner).  The
   choice depends only on (key, ring, loads) — still coordination-free
   given a shared load view, and provably exponentially better balanced
   than one choice under skew (the "power of two choices" result). *)
let place_p2c t ~load key =
  let c1 = snd t.points.(successor t (mix (Shard.hash key))) in
  let alt = successor t (mix (Shard.hash_salted ~salt:"p2c" key)) in
  let c2 = snd t.points.(alt) in
  let c2 =
    if c2 <> c1 then c2
    else begin
      (* Same owner from both hashes: walk the ring to the next distinct
         shard so there are genuinely two choices whenever K >= 2. *)
      let n = Array.length t.points in
      let i = ref alt in
      let steps = ref 0 in
      while snd t.points.(!i mod n) = c1 && !steps < n do
        incr i;
        incr steps
      done;
      snd t.points.(!i mod n)
    end
  in
  if c2 = c1 then c1 else if load c2 < load c1 then c2 else c1
