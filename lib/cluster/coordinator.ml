(* The cluster coordinator: one control plane over K shard kernels.

   E20 proved near-linear scale-out over K *fully independent* kernels;
   what a real deployment shares is exactly what this module owns — the
   keystore generation and per-module policy revisions that every shard's
   caches are keyed by.  A control-plane write ([publish]) bumps the
   cluster epoch and reaches each shard in one of two coherence modes:

   - Eager broadcast: the op is applied to every shard at publish time
     (so correctness is immediate) and each shard accrues the handling
     cost of the invalidation message — {!Smod_sim.Cost_model.Coord_ctrl_recv}
     cycles — as debt charged on that shard's next dispatch, where the
     control message would be drained in a real event loop.  Dispatches
     between publishes pay nothing.

   - Lazy epoch check: the op is queued per shard with a publish-time
     stamp; every dispatch pays a {!Cost_model.Coord_epoch_check}
     (~15 cycles) and a stale shard settles with one
     {!Cost_model.Coord_sync_fetch} plus a {!Cost_model.Coord_apply_op}
     per queued op — a whole rotation storm coalesces into one sync.

   Either way the settlement runs from {!Secmodule.Smod.set_dispatch_gate},
   i.e. before any credential or session state is read, so no dispatch
   ever executes under a revoked keystore generation or a stale policy
   revision (test/test_cluster.ml pins both modes).

   Applying an op deliberately reuses the single-kernel invalidation
   chain: a keystore rotation fires Keystore.on_change, which flushes the
   registry compiled caches, session memos, and — when smodd is installed
   — the pool's decision cache, all in the same step (PR 4's guarantee,
   now per shard). *)

module Smod = Secmodule.Smod
module Registry = Secmodule.Registry
module Policy = Secmodule.Policy
module Machine = Smod_kern.Machine
module Clock = Smod_sim.Clock
module Cost = Smod_sim.Cost_model
module Keystore = Smod_keynote.Keystore
module Table = Smod_util.Table

type mode = Eager | Lazy

let mode_name = function Eager -> "eager" | Lazy -> "lazy"

type op =
  | Rotate_key of { name : string; secret : string }
      (** Upsert at cluster level: rotates where the principal exists,
          installs it where a shard has not seen it yet (strict
          {!Keystore.rotate_principal} underneath, so replication cannot
          diverge silently — a shard either knew the principal or gets
          the authoritative new key). *)
  | Set_policy of { module_name : string; version : int; policy : Policy.t }
      (** Applied on every shard where (module, version) is registered;
          shards not hosting the module skip it. *)

let describe_op = function
  | Rotate_key { name; _ } -> Printf.sprintf "rotate-key(%s)" name
  | Set_policy { module_name; version; _ } ->
      Printf.sprintf "set-policy(%s v%d)" module_name version

type migration_phase = Draining | Scrubbed | Reattaching | Done

let phase_name = function
  | Draining -> "draining"
  | Scrubbed -> "scrubbed"
  | Reattaching -> "reattaching"
  | Done -> "done"

type migration = {
  mg_tenant : string;
  mg_from : int;
  mg_to : int;
  mg_sessions : int;  (* sessions drained off the source *)
  mutable mg_phase : migration_phase;
}

type shard = {
  sh_id : int;
  sh_smod : Smod.t;
  mutable sh_epoch : int;  (* last cluster epoch this shard settled *)
  mutable sh_debt_cycles : float;  (* eager: un-drained control-message cost *)
  mutable sh_pending : (float * op) list;  (* lazy: (publish stamp us, op), oldest first *)
  mutable sh_prop_us : float list;  (* propagation samples, newest first *)
}

type t = {
  mode : mode;
  vnodes : int;
  mutable epoch : int;
  mutable shards : shard list;  (* ascending sh_id *)
  mutable ring : Placement.ring option;  (* None until the first shard joins *)
  overrides : (string, int) Hashtbl.t;  (* tenant -> shard, set by migration *)
  mutable migrations : migration list;  (* newest first *)
  mutable next_id : int;
}

(* Observability: control-plane traffic, not dispatch volume.  Counters
   only — every simulated-time cost is charged explicitly above. *)
let m_scope = Smod_metrics.scope "cluster"
let m_publishes = Smod_metrics.Scope.counter m_scope "publishes"
let m_ops_applied = Smod_metrics.Scope.counter m_scope "ops_applied"
let m_epoch_checks = Smod_metrics.Scope.counter m_scope "epoch_checks"
let m_lazy_syncs = Smod_metrics.Scope.counter m_scope "lazy_syncs"
let m_migrations = Smod_metrics.Scope.counter m_scope "migrations"
let m_sessions_drained = Smod_metrics.Scope.counter m_scope "sessions_drained"

let create ?(vnodes = Placement.default_vnodes) ~mode () =
  {
    mode;
    vnodes;
    epoch = 0;
    shards = [];
    ring = None;
    overrides = Hashtbl.create 16;
    migrations = [];
    next_id = 0;
  }

let mode t = t.mode
let epoch t = t.epoch
let shards t = t.shards
let shard_id sh = sh.sh_id
let smod sh = sh.sh_smod
let shard_epoch sh = sh.sh_epoch
let propagation_us sh = List.rev sh.sh_prop_us
let reset_propagation sh = sh.sh_prop_us <- []

let ring t =
  match t.ring with Some r -> r | None -> invalid_arg "Coordinator: cluster has no shards"

let shard_exn t id =
  match List.find_opt (fun sh -> sh.sh_id = id) t.shards with
  | Some sh -> sh
  | None -> invalid_arg (Printf.sprintf "Coordinator: no shard %d" id)

let apply_op sh op =
  (match op with
  | Rotate_key { name; secret } ->
      let ks = Smod.keystore sh.sh_smod in
      if Keystore.has_principal ks name then Keystore.rotate_principal ks ~name ~secret
      else Keystore.add_principal ks ~name ~secret
  | Set_policy { module_name; version; policy } -> (
      match Registry.find (Smod.registry sh.sh_smod) ~name:module_name ~version with
      | Some entry -> Registry.set_policy entry policy
      | None -> ()));
  Smod_metrics.Counter.incr m_ops_applied

(* Lazy-mode settlement: one fetch amortises every op queued since this
   shard last looked, then the shard is current. *)
let sync t sh clock =
  Clock.charge clock Cost.Coord_sync_fetch;
  Smod_metrics.Counter.incr m_lazy_syncs;
  let pending = sh.sh_pending in
  sh.sh_pending <- [];
  List.iter
    (fun (stamp, op) ->
      Clock.charge clock Cost.Coord_apply_op;
      apply_op sh op;
      sh.sh_prop_us <- (Clock.now_us clock -. stamp) :: sh.sh_prop_us)
    pending;
  sh.sh_epoch <- t.epoch

let gate t sh () =
  match t.mode with
  | Eager ->
      if sh.sh_debt_cycles > 0.0 then begin
        let clock = Machine.clock (Smod.machine sh.sh_smod) in
        Clock.charge_cycles clock sh.sh_debt_cycles;
        sh.sh_debt_cycles <- 0.0
      end
  | Lazy ->
      let clock = Machine.clock (Smod.machine sh.sh_smod) in
      Clock.charge clock Cost.Coord_epoch_check;
      Smod_metrics.Counter.incr m_epoch_checks;
      if sh.sh_epoch < t.epoch then sync t sh clock

let add_shard t smod_t =
  let sh =
    {
      sh_id = t.next_id;
      sh_smod = smod_t;
      sh_epoch = t.epoch;
      sh_debt_cycles = 0.0;
      sh_pending = [];
      sh_prop_us = [];
    }
  in
  t.next_id <- t.next_id + 1;
  t.shards <- t.shards @ [ sh ];
  Smod.set_dispatch_gate smod_t (Some (gate t sh));
  t.ring <-
    Some
      (match t.ring with
      | None -> Placement.create ~vnodes:t.vnodes [ sh.sh_id ]
      | Some r -> Placement.add_shard r sh.sh_id);
  sh

let remove_shard t id =
  let sh = shard_exn t id in
  Smod.set_dispatch_gate sh.sh_smod None;
  t.shards <- List.filter (fun s -> s.sh_id <> id) t.shards;
  t.ring <-
    (match t.ring with
    | Some r when List.length (Placement.shards r) > 1 -> Some (Placement.remove_shard r id)
    | Some _ | None -> None)

let publish t op =
  t.epoch <- t.epoch + 1;
  Smod_metrics.Counter.incr m_publishes;
  List.iter
    (fun sh ->
      match t.mode with
      | Eager ->
          (* Correctness now, cost at the next dispatch: the shard's event
             loop drains the invalidation message before admitting anything
             else, so the handling cycles land on the first call after the
             storm — exactly where a real deployment's tail forms. *)
          apply_op sh op;
          sh.sh_epoch <- t.epoch;
          sh.sh_debt_cycles <- sh.sh_debt_cycles +. Cost.cycles Cost.Coord_ctrl_recv;
          sh.sh_prop_us <-
            Cost.us_of_cycles (Cost.cycles Cost.Coord_ctrl_recv) :: sh.sh_prop_us
      | Lazy ->
          let clock = Machine.clock (Smod.machine sh.sh_smod) in
          sh.sh_pending <- sh.sh_pending @ [ (Clock.now_us clock, op) ])
    t.shards

(* ------------------------------------------------------------------ *)
(* Placement                                                           *)
(* ------------------------------------------------------------------ *)

let route t key =
  match Hashtbl.find_opt t.overrides key with
  | Some id -> id
  | None -> Placement.place (ring t) key

let set_override t ~tenant ~shard = Hashtbl.replace t.overrides tenant shard
let clear_override t ~tenant = Hashtbl.remove t.overrides tenant

let overrides t =
  Hashtbl.fold (fun tenant shard acc -> (tenant, shard) :: acc) t.overrides []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Migrations (driven by Migrate, recorded here)                       *)
(* ------------------------------------------------------------------ *)

let add_migration t mg =
  t.migrations <- mg :: t.migrations;
  Smod_metrics.Counter.incr m_migrations;
  Smod_metrics.Counter.add m_sessions_drained mg.mg_sessions

let migrations t = List.rev t.migrations
let in_flight t = List.rev (List.filter (fun mg -> mg.mg_phase <> Done) t.migrations)

(* ------------------------------------------------------------------ *)
(* Status (smodctl cluster status)                                     *)
(* ------------------------------------------------------------------ *)

let render_status t ~tenants =
  let b = Buffer.create 1024 in
  Printf.bprintf b "coordinator: mode=%s epoch=%d shards=%d\n" (mode_name t.mode) t.epoch
    (List.length t.shards);
  let sh_t =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right; Table.Left ]
      [ "shard"; "epoch"; "keystore gen"; "sessions"; "policy revs" ]
  in
  List.iter
    (fun sh ->
      let revs =
        Registry.entries (Smod.registry sh.sh_smod)
        |> List.map (fun (e : Registry.entry) ->
               Printf.sprintf "%s:r%d" e.Registry.image.Smod_modfmt.Smof.mod_name
                 e.Registry.policy_rev)
        |> String.concat " "
      in
      Table.add_row sh_t
        [
          string_of_int sh.sh_id;
          string_of_int sh.sh_epoch;
          string_of_int (Keystore.generation (Smod.keystore sh.sh_smod));
          string_of_int (List.length (Smod.active_sessions sh.sh_smod));
          revs;
        ])
    t.shards;
  Buffer.add_string b (Table.render sh_t);
  if tenants <> [] then begin
    Buffer.add_string b "\nplacement:\n";
    let pl_t =
      Table.create ~aligns:[ Table.Left; Table.Right; Table.Left ]
        [ "tenant"; "shard"; "via" ]
    in
    List.iter
      (fun tenant ->
        let via = if Hashtbl.mem t.overrides tenant then "override" else "ring" in
        Table.add_row pl_t [ tenant; string_of_int (route t tenant); via ])
      tenants;
    Buffer.add_string b (Table.render pl_t)
  end;
  (match migrations t with
  | [] -> Buffer.add_string b "\nmigrations: none\n"
  | mgs ->
      Buffer.add_string b "\nmigrations:\n";
      List.iter
        (fun mg ->
          Printf.bprintf b "  %s: shard %d -> %d, %d session%s, %s\n" mg.mg_tenant mg.mg_from
            mg.mg_to mg.mg_sessions
            (if mg.mg_sessions = 1 then "" else "s")
            (phase_name mg.mg_phase))
        mgs);
  Buffer.contents b
