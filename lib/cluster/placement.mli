(** Consistent-hash tenant placement for the sharded control plane.

    Replaces the E20 router's bare [FNV-1a mod K] ({!Smod_pool.Shard.place})
    with a vnode ring: resharding K→K±1 moves only ~1/(K+1) of the keys
    instead of nearly all of them, and a power-of-two-choices variant
    bounds imbalance under Zipf-skewed tenant load.

    A ring is an immutable value and every placement function is pure —
    a function of (key, ring[, load view]) only — so router replicas on
    separate domains agree without coordination (property-tested in
    test/test_cluster.ml). *)

type ring

val default_vnodes : int
(** 64 points per shard: enough for <10% arc-length variance at K=8. *)

val create : ?vnodes:int -> int list -> ring
(** Ring over the given shard ids (deduplicated, order-insensitive).
    Raises [Invalid_argument] on an empty list or [vnodes < 1]. *)

val shards : ring -> int list
(** Member shard ids, sorted. *)

val vnodes : ring -> int

val place : ring -> string -> int
(** Owner shard: first vnode point clockwise from FNV-1a(key). *)

val place_p2c : ring -> load:(int -> int) -> string -> int
(** Power-of-two-choices: the ring owner plus a salted-hash second
    candidate; the less-loaded wins, ties to the owner.  [load] maps a
    shard id to its current load (e.g. resident sessions). *)

val add_shard : ring -> int -> ring
(** New ring with one more shard.  Raises [Invalid_argument] on a
    duplicate id.  Keys move only into the new shard's arcs. *)

val remove_shard : ring -> int -> ring
(** New ring without the shard.  Raises [Invalid_argument] if absent. *)

val moved : before:ring -> after:ring -> string list -> int
(** How many of [keys] place differently on the two rings — the
    reshard-churn metric E21 reports. *)
