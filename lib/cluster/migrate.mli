(** Live tenant migration between shards.

    Drain → scrub → re-attach, built entirely from existing, tested
    machinery: {!Secmodule.Smod.detach_session} drains each session (for
    pooled sessions that is the pool scrub path — the tenant's secret
    residue is destroyed by the same code PR 2 pins), a coordinator
    placement override flips ownership atomically from the routers'
    point of view, and the tenant re-attaches on the destination through
    ordinary pooled admission.  Why this shape: DESIGN.md §11. *)

val start : Coordinator.t -> tenant:string -> to_shard:int -> Coordinator.migration
(** Drain the tenant's sessions off their current shard (charging
    {!Smod_sim.Cost_model.Migrate_drain} per session on the source
    clock), set the placement override, and charge
    {!Smod_sim.Cost_model.Migrate_reattach} per session on the
    destination.  Returns the migration record in phase [Reattaching];
    raises [Invalid_argument] if the tenant is already on [to_shard] or
    the shard id is unknown. *)

val finish : Coordinator.t -> Coordinator.migration -> unit
(** Mark the migration [Done] — call once the tenant has re-attached on
    the destination. *)

val rebalance :
  Coordinator.t -> tenants:string list -> load:(string -> float) -> Coordinator.migration list
(** Greedy rebalancing under skew: repeatedly move the hottest shard's
    heaviest movable tenant to the coldest shard while the move strictly
    shrinks the load gap.  Returns the migrations started (possibly
    none). *)

val tenant_sessions : Secmodule.Smod.t -> string -> Secmodule.Smod.session list
(** The tenant's active sessions on one kernel (by credential
    principal). *)
