(** The cluster coordinator: one control plane over K shard kernels.

    Owns the authoritative keystore generation and policy revisions for
    the cluster and replicates control-plane writes ({!publish}) to every
    shard in one of two benchmarked coherence modes:

    - {b Eager broadcast}: ops apply to all shards at publish time;
      each shard accrues the invalidation-handling cost
      ({!Smod_sim.Cost_model.Coord_ctrl_recv}) as debt charged on its
      next dispatch.
    - {b Lazy epoch check}: ops queue per shard; every dispatch pays a
      ~15-cycle epoch compare and a stale shard settles with one
      {!Smod_sim.Cost_model.Coord_sync_fetch} plus one
      {!Smod_sim.Cost_model.Coord_apply_op} per queued op — a rotation
      storm coalesces into a single sync.

    Settlement runs from {!Secmodule.Smod.set_dispatch_gate}, before any
    credential or session state is consulted, so no dispatch executes
    under a revoked keystore generation or stale policy revision.
    Trust model and the eager/lazy trade-off: DESIGN.md §11. *)

type mode = Eager | Lazy

val mode_name : mode -> string

type op =
  | Rotate_key of { name : string; secret : string }
      (** Cluster-level upsert: rotate where the principal exists,
          install the authoritative key where a shard never saw it. *)
  | Set_policy of { module_name : string; version : int; policy : Secmodule.Policy.t }
      (** Applied on shards hosting (module, version); skipped elsewhere. *)

val describe_op : op -> string

type migration_phase = Draining | Scrubbed | Reattaching | Done

val phase_name : migration_phase -> string

type migration = {
  mg_tenant : string;
  mg_from : int;
  mg_to : int;
  mg_sessions : int;
  mutable mg_phase : migration_phase;
}

type shard
type t

val create : ?vnodes:int -> mode:mode -> unit -> t

val add_shard : t -> Secmodule.Smod.t -> shard
(** Join a kernel to the cluster: assigns the next shard id, extends the
    placement ring, and installs the coherence gate on the kernel's
    dispatch path.  The shard starts current (epoch = cluster epoch). *)

val remove_shard : t -> int -> unit
(** Uninstalls the gate and shrinks the ring. *)

val mode : t -> mode
val epoch : t -> int
val shards : t -> shard list
val shard_exn : t -> int -> shard
val shard_id : shard -> int
val smod : shard -> Secmodule.Smod.t
val shard_epoch : shard -> int
(** Last cluster epoch the shard has settled (always current in eager
    mode; in lazy mode, lags until the next dispatch on that shard). *)

val propagation_us : shard -> float list
(** Per-op propagation samples, oldest first: eager = the handling cost
    of the control message; lazy = shard-clock time from publish to the
    sync that applied the op. *)

val reset_propagation : shard -> unit

val publish : t -> op -> unit
(** Bump the cluster epoch and replicate the op per the coherence mode. *)

val route : t -> string -> int
(** Owner shard for a tenant key: migration override if one is set,
    otherwise consistent-hash placement ({!Placement.place}). *)

val ring : t -> Placement.ring
(** Raises [Invalid_argument] if the cluster has no shards. *)

val set_override : t -> tenant:string -> shard:int -> unit
val clear_override : t -> tenant:string -> unit
val overrides : t -> (string * int) list

val add_migration : t -> migration -> unit
val migrations : t -> migration list
val in_flight : t -> migration list

val render_status : t -> tenants:string list -> string
(** The [smodctl cluster status] body: coordinator line, per-shard
    (epoch, keystore generation, sessions, policy revisions) table,
    placement of [tenants], and the migration list. *)
