(* Live tenant migration: move a tenant's sessions from their current
   shard to another without ever letting a dispatch run under a stale
   policy view.

   The protocol deliberately reuses machinery that already exists and is
   already tested, rather than inventing a parallel path:

   - Drain: every active session of the tenant on the source shard is
     detached via Smod.detach_session — the same idempotent teardown the
     client-exit hook uses.  For pooled sessions that lands the handle on
     the pool's scrub path (zero the secret segment, park for the next
     tenant), so the migrated tenant's residue is destroyed by exactly
     the code PR 2's scrub tests pin.  Each drained session charges
     Migrate_drain on the source clock for the detach signalling.

   - Override: the coordinator's placement override points the tenant at
     the destination before any re-attach, so every router agrees on the
     new owner from this moment — a client that races the migration
     simply lands on the destination.

   - Re-attach: the tenant's next session on the destination goes through
     the ordinary pooled admission path (nothing special to get wrong);
     Migrate_reattach is charged per drained session for the extra
     bookkeeping of admitting a migrated tenant.

   Coherence is orthogonal and already guaranteed: the destination shard
   settles any pending control ops in its dispatch gate before the
   re-attached session's first admission. *)

module Smod = Secmodule.Smod
module Credential = Secmodule.Credential
module Machine = Smod_kern.Machine
module Clock = Smod_sim.Clock
module Cost = Smod_sim.Cost_model

let tenant_sessions smod tenant =
  List.filter
    (fun (s : Smod.session) -> s.Smod.credential.Credential.principal = tenant)
    (Smod.active_sessions smod)

let start coord ~tenant ~to_shard =
  let from_id = Coordinator.route coord tenant in
  if from_id = to_shard then
    invalid_arg (Printf.sprintf "Migrate.start: %s already on shard %d" tenant to_shard);
  let src = Coordinator.shard_exn coord from_id in
  ignore (Coordinator.shard_exn coord to_shard);
  let src_smod = Coordinator.smod src in
  let sessions = tenant_sessions src_smod tenant in
  let mg =
    {
      Coordinator.mg_tenant = tenant;
      mg_from = from_id;
      mg_to = to_shard;
      mg_sessions = List.length sessions;
      mg_phase = Coordinator.Draining;
    }
  in
  Coordinator.add_migration coord mg;
  let src_clock = Machine.clock (Smod.machine src_smod) in
  List.iter
    (fun s ->
      Clock.charge src_clock Cost.Migrate_drain;
      Smod.detach_session src_smod s)
    sessions;
  (* Detach delivered; pooled handles scrub themselves on the way back to
     the pool the next time the source machine runs. *)
  mg.Coordinator.mg_phase <- Coordinator.Scrubbed;
  Coordinator.set_override coord ~tenant ~shard:to_shard;
  let dst = Coordinator.shard_exn coord to_shard in
  let dst_clock = Machine.clock (Smod.machine (Coordinator.smod dst)) in
  List.iter (fun _ -> Clock.charge dst_clock Cost.Migrate_reattach) sessions;
  mg.Coordinator.mg_phase <- Coordinator.Reattaching;
  mg

let finish coord mg =
  (match mg.Coordinator.mg_phase with
  | Coordinator.Done -> ()
  | _ -> mg.Coordinator.mg_phase <- Coordinator.Done);
  ignore coord

let rebalance coord ~tenants ~load =
  (* Move the most-loaded shard's heaviest ring-placed tenants onto the
     least-loaded shard until within one tenant of balance.  Deliberately
     greedy and conservative: migration is not free, so only clear wins
     move. *)
  let migs = ref [] in
  let continue = ref true in
  while !continue do
    let by_shard = Hashtbl.create 8 in
    List.iter
      (fun sh -> Hashtbl.replace by_shard (Coordinator.shard_id sh) [])
      (Coordinator.shards coord);
    List.iter
      (fun tnt ->
        let s = Coordinator.route coord tnt in
        Hashtbl.replace by_shard s (tnt :: (try Hashtbl.find by_shard s with Not_found -> [])))
      tenants;
    let weights =
      Hashtbl.fold
        (fun s tnts acc -> (s, List.fold_left (fun a t -> a +. load t) 0.0 tnts, tnts) :: acc)
        by_shard []
    in
    match List.sort (fun (_, a, _) (_, b, _) -> compare b a) weights with
    | (hot, hot_w, hot_tnts) :: rest when rest <> [] ->
        let cold, cold_w, _ = List.nth rest (List.length rest - 1) in
        let candidate =
          (* Heaviest tenant whose move shrinks the gap. *)
          List.sort (fun a b -> compare (load b) (load a)) hot_tnts
          |> List.find_opt (fun t -> 2.0 *. load t < hot_w -. cold_w)
        in
        (match candidate with
        | Some tenant ->
            migs := start coord ~tenant ~to_shard:cold :: !migs;
            ignore hot
        | None -> continue := false)
    | _ -> continue := false
  done;
  List.rev !migs
