type t = {
  secrets : (string, string) Hashtbl.t;
  mutable generation : int;
  mutable change_hooks : (unit -> unit) list;
}

let create () = { secrets = Hashtbl.create 16; generation = 0; change_hooks = [] }

let add_principal t ~name ~secret =
  Hashtbl.replace t.secrets name secret;
  t.generation <- t.generation + 1;
  List.iter (fun hook -> hook ()) t.change_hooks

let rotate_principal t ~name ~secret =
  if not (Hashtbl.mem t.secrets name) then raise Not_found;
  Hashtbl.replace t.secrets name secret;
  t.generation <- t.generation + 1;
  List.iter (fun hook -> hook ()) t.change_hooks

let remove_principal t ~name =
  if Hashtbl.mem t.secrets name then begin
    Hashtbl.remove t.secrets name;
    t.generation <- t.generation + 1;
    List.iter (fun hook -> hook ()) t.change_hooks
  end

let has_principal t name = Hashtbl.mem t.secrets name
let generation t = t.generation
let on_change t hook = t.change_hooks <- hook :: t.change_hooks

let sign t (a : Ast.assertion) =
  match Hashtbl.find_opt t.secrets a.authorizer with
  | None -> raise Not_found
  | Some secret ->
      let tag = Smod_crypto.Hmac.mac_hex ~key:secret (Ast.canonical_body a) in
      { a with signature = Some ("hmac-sha256:" ^ tag) }

let verify t (a : Ast.assertion) =
  if a.authorizer = "POLICY" then true
  else begin
    match (a.signature, Hashtbl.find_opt t.secrets a.authorizer) with
    | Some s, Some secret -> (
        match String.index_opt s ':' with
        | Some i when String.sub s 0 i = "hmac-sha256" -> (
            let hex = String.sub s (i + 1) (String.length s - i - 1) in
            match Smod_util.Hexdump.of_hex hex with
            | tag -> Smod_crypto.Hmac.verify ~key:secret ~tag (Ast.canonical_body a)
            | exception Invalid_argument _ -> false)
        | _ -> false)
    | _ -> false
  end
