(** Batch-major (vectorized) residue execution — E25.

    [Fuse.run_slot] replays the per-slot residue slot-major: one
    interpreter walk, and so one dispatch loop, per slot.  [run_residue]
    turns the loop inside out: the per-slot varying state is gathered
    into struct-of-arrays columns (a node column, a stack column, an
    accumulator and a program counter per lane) and the residue executes
    {e one pass per opcode over all N lanes}.  Lanes that diverge
    through a fused [test+jf] sleep until the walk reaches their
    landing point — they are mask-skipped, never branched around — and
    the walk position itself is the minimum program counter over live
    lanes, so a stretch no lane needs is skipped entirely.  Forward-only
    jumps (a [Compile.compile] invariant the lowering preserves) make
    the walk monotone and single-pass.

    Verdict parity: for every lane, [vr_indices.(k)] equals the [index]
    [Fuse.run_slot] would return for that lane's origin and attribute
    list — asserted by the four-way differential in
    test/test_compile.ml.

    Cost accounting is the caller's job: charge
    {!Smod_sim.Cost_model.Policy_vector_op} times [vr_units], where each
    pass over L live lanes contributes [ceil(L/W)] units — the
    SIMD-style lane-width discount.  At N=1 the walk visits exactly the
    positions the scalar interpreter visits and charges one unit each,
    so the fallback is honest by construction. *)

type lane = {
  l_origin : Fuse.origin;
      (** kernel-resolved provenance for this lane's slot — the origin
          column stays unforgeable because it never passes through
          client-writable memory *)
  l_attrs : (string * string) list;
      (** the slot's full attribute list (varying attributes such as
          ["function"] included), exactly what [Fuse.run_slot] would
          receive *)
}

type result = {
  vr_indices : int array;  (** per-lane compliance index, clamped to levels *)
  vr_passes : int;  (** opcode passes walked across all residue segments *)
  vr_units : int;
      (** Σ per-pass [ceil(live/W)] — the {!Smod_sim.Cost_model.Policy_vector_op}
          charge *)
}

val default_width : int
(** 8 — the lane width W the cost model discounts by unless overridden. *)

val run_residue : Fuse.t -> Fuse.snapshot -> width:int -> lanes:lane array -> result
(** Execute the plan's residue batch-major over [lanes] against the
    batch-invariant [snapshot] (which is never mutated — every lane gets
    a private node column seeded from it).  Raises [Invalid_argument]
    when [width < 1].  [lanes] may be any size; an empty array returns
    an empty result at zero cost. *)

val level_of : Fuse.t -> int -> string
(** The compliance-level name for a clamped index from [vr_indices]. *)
