(** Compiler from assertion sets to flattened decision programs.

    [Eval.query] walks the delegation graph and re-interprets every
    condition expression on every call — the per-assertion cost the paper
    predicts in §5.  [compile] does that walk once: the delegation graph is
    resolved into a licensee closure (requesting principals fold to
    compile-time constants at maximum trust, delegation cycles to minimum
    trust, shared principals to memoized value nodes), signature material
    is ignored here (callers hoist verification — see
    [Secmodule.Policy.compile]), and every condition guard is lowered to a
    compact postfix opcode array with jump-based short-circuit [&&]/[||].
    [run] then evaluates the program with a tight interpreter loop whose
    per-opcode cost is charged by callers as
    [Cost_model.Policy_compiled_op] — tens of cycles instead of the 420
    cycles of [Keynote_assertion_eval].

    [run] computes exactly the verdict [Eval.query] would return for the
    same [(policy, credentials, requesters, levels)] and any [attrs]
    (asserted by the randomized differential suite in
    [test/test_compile.ml]), with one deliberate exception: where the
    interpreter raises [Invalid_argument] lazily — an unknown compliance
    level named by a clause whose guard happens to hold — compilation
    fails up front with [Error], so a compiled caller denies instead of
    crashing. *)

type t
(** A compiled decision program.  Immutable; safe to cache across calls
    and sessions.  Programs are kernel-side values only — they are never
    serialized into client-shared memory. *)

type outcome = {
  level : string;  (** [levels.(index)] *)
  index : int;
  ops : int;
      (** opcodes the interpreter executed — the cost driver callers
          multiply by [Cost_model.Policy_compiled_op] *)
}

val compile :
  policy:Ast.assertion list ->
  credentials:Ast.assertion list ->
  requesters:string list ->
  levels:string array ->
  (t, string) result
(** Flatten one query shape.  Everything but the action attributes is
    fixed at compile time; the resulting program may be evaluated for any
    [attrs].  [Error] (with a reason) when [levels] is empty or any clause
    in [policy] or [credentials] names an unknown level — the total
    counterpart of [Eval.query]'s [Invalid_argument]. *)

val run : t -> attrs:(string * string) list -> outcome
(** Evaluate the program against one set of action attributes.  Total:
    never raises, and [index] is always a valid index into the compiled
    [levels]. *)

val length : t -> int
(** Number of opcodes in the program (static size, not per-run cost). *)

val node_count : t -> int
(** Value nodes (assertion and shared-principal results) the program
    materializes per run. *)

val op_counts : t -> (string * int) list
(** Static opcode histogram by mnemonic, most frequent first — surfaced
    by [smodctl policy status]. *)
