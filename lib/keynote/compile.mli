(** Compiler from assertion sets to flattened decision programs.

    [Eval.query] walks the delegation graph and re-interprets every
    condition expression on every call — the per-assertion cost the paper
    predicts in §5.  [compile] does that walk once: the delegation graph is
    resolved into a licensee closure (requesting principals fold to
    compile-time constants at maximum trust, delegation cycles to minimum
    trust, shared principals to memoized value nodes), signature material
    is ignored here (callers hoist verification — see
    [Secmodule.Policy.compile]), and every condition guard is lowered to a
    compact postfix opcode array with jump-based short-circuit [&&]/[||].
    [run] then evaluates the program with a tight interpreter loop whose
    per-opcode cost is charged by callers as
    [Cost_model.Policy_compiled_op] — tens of cycles instead of the 420
    cycles of [Keynote_assertion_eval].

    [run] computes exactly the verdict [Eval.query] would return for the
    same [(policy, credentials, requesters, levels)] and any [attrs]
    (asserted by the randomized differential suite in
    [test/test_compile.ml]), with one deliberate exception: where the
    interpreter raises [Invalid_argument] lazily — an unknown compliance
    level named by a clause whose guard happens to hold — compilation
    fails up front with [Error], so a compiled caller denies instead of
    crashing.  Origin predicates (below) extend the same discipline. *)

type operand = O_str of string | O_attr of string
(** A [Test] side resolved at compile time: a literal, or an action
    attribute looked up per run. *)

type instr =
  | Test of operand * Ast.cmp * operand  (** push guard comparison result *)
  | Push_bool of bool
  | Not_top
  | Jfalse of int
      (** top false: jump keeping it; else pop and fall through *)
  | Jtrue of int
  | Node_begin  (** clause accumulator := 0 *)
  | Clause of int  (** pop guard; if it held, accumulator := max acc level *)
  | Push_level of int
  | Load_node of int
  | Min2
  | Max2
  | Kof of int * int  (** (k, n): pop n values, push the k-th largest *)
  | Node_end of int  (** pop licensee value; node := min acc value *)
  | Node_end_const of int * int  (** licensee value folded at compile time *)
  | Store_node of int  (** pop a computed value into a shared node *)
  | Root of int * int array  (** push max of a constant and the given nodes *)
      (** The concrete opcode set is exposed (rather than kept abstract)
          for exactly one downstream consumer: [Fuse], which re-lowers the
          flat program into batch-partitioned, superoperator-fused
          segments.  Everyone else should treat programs as opaque. *)

type t
(** A compiled decision program.  Immutable; safe to cache across calls
    and sessions.  Programs are kernel-side values only — they are never
    serialized into client-shared memory. *)

type outcome = {
  level : string;  (** [levels.(index)] *)
  index : int;
  ops : int;
      (** opcodes the interpreter executed — the cost driver callers
          multiply by [Cost_model.Policy_compiled_op] *)
}

type origin_env = { known_modules : string list }
(** The kernel's view of valid call origins at compile time: the set of
    registered SecModule names ([origin_module] may additionally name
    ["user"], the not-a-module origin).  Valid rings are [0..3] and valid
    transports ["msgq"], ["ring"], ["poller"], ["attach"] — fixed by the
    machine, not by the environment. *)

val origin_attrs : string list
(** The attribute names resolved from kernel-held session state at
    dispatch: ["origin_module"; "origin_ring"; "origin_transport"].
    Clients cannot forge them — the kernel appends them to every
    admission query after stripping nothing (they are reserved purely by
    convention; a client-supplied attribute never reaches admission). *)

val compile :
  ?origin:origin_env ->
  policy:Ast.assertion list ->
  credentials:Ast.assertion list ->
  requesters:string list ->
  levels:string array ->
  unit ->
  (t, string) result
(** Flatten one query shape.  Everything but the action attributes is
    fixed at compile time; the resulting program may be evaluated for any
    [attrs].  [Error] (with a reason) when [levels] is empty or any clause
    in [policy] or [credentials] names an unknown level — the total
    counterpart of [Eval.query]'s [Invalid_argument].  When [origin] is
    supplied, an origin predicate comparing [origin_module],
    [origin_ring], or [origin_transport] against a literal outside the
    kernel's valid set is also an [Error], so callers fail closed on
    origin typos exactly as on unknown levels. *)

val run : t -> attrs:(string * string) list -> outcome
(** Evaluate the program against one set of action attributes.  Total:
    never raises, and [index] is always a valid index into the compiled
    [levels]. *)

val compare_values : string -> string -> int
(** The comparison rule shared by [Eval], [run], and [Fuse]: numeric iff
    both sides parse as integers, lexicographic otherwise. *)

val kth_largest : int -> int list -> int

val length : t -> int
(** Number of opcodes in the program (static size, not per-run cost). *)

val node_count : t -> int
(** Value nodes (assertion and shared-principal results) the program
    materializes per run. *)

val instrs : t -> instr array
(** The flat opcode array, in program order.  Jump targets are absolute
    positions into this array. *)

val levels : t -> string array
(** The compliance ladder the program's ordinals index into. *)

val mnemonic : instr -> string

val op_counts : t -> (string * int) list
(** Static opcode histogram by mnemonic, most frequent first — surfaced
    by [smodctl policy status]. *)
