(** Parser for the assertion surface syntax.

    An assertion is a sequence of [field: value] lines; a line beginning
    with whitespace continues the previous field.  Fields: [keynote-version]
    (must be 2), [authorizer], [licensees], [conditions], [comment],
    [signature].  Multiple assertions in one string are separated by blank
    lines.

    Conditions dialect: [guard -> "level";] clauses where a guard is a
    boolean expression over comparisons of action attributes (bare
    identifiers), string literals and integer literals, combined with
    [&&], [||], [!] and parentheses.  Comparisons are numeric when both
    sides are integers and lexicographic otherwise.

    Licensees dialect: quoted principal names combined with [&&], [||],
    parentheses, and [k-of(a, b, ...)] threshold groups. *)

exception Parse_error of { line : int; message : string }

type diagnostic = { line : int; message : string }
(** A typed parse failure; what the raising entry points pack into
    {!Parse_error} and the [_res] ones return. *)

val pp_diagnostic : Format.formatter -> diagnostic -> unit

val assertion_of_string : string -> Ast.assertion
val assertions_of_string : string -> Ast.assertion list
val expr_of_string : string -> Ast.expr
(** Parse a bare conditions guard (used by tests and policy builders). *)

val licensees_of_string : string -> Ast.licensees

(** {2 Total variants}

    The same parsers, total on hostile input: any malformed assertion —
    including oversized integer literals and pathologically deep
    [!]/paren/[k-of] nesting, which used to escape as [Failure] or a stack
    overflow — comes back as [Error] with a typed diagnostic.  Kernel-path
    callers ([Credential.of_bytes] and everything above it) use these so a
    forged credential can cost the requester an errno but never a crash. *)

val assertion_of_string_res : string -> (Ast.assertion, diagnostic) result
val assertions_of_string_res : string -> (Ast.assertion list, diagnostic) result
val expr_of_string_res : string -> (Ast.expr, diagnostic) result
val licensees_of_string_res : string -> (Ast.licensees, diagnostic) result
