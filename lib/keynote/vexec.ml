(* Batch-major (vectorized) residue execution.

   [Fuse.run_slot] replays the per-slot residue one slot at a time: under
   a 64-slot ring batch that is 64 interpreter walks over the same
   residue program, 64 dispatches per opcode.  This module executes the
   residue the other way around — one pass per opcode over all N lanes —
   against struct-of-arrays columns of the per-slot state: a node column,
   a stack column, an accumulator and a program counter per lane.

   The walk is a *min-pc uniform walk*.  [Compile.compile] only ever
   emits forward jumps (targets are patched to a later emission index),
   a property the lowering preserves, so per-lane program counters are
   monotone.  The walk position is always the minimum pc over live
   lanes: the opcode there executes for exactly the lanes whose pc sits
   on it, lanes that jumped ahead sleep (they are mask-skipped, not
   branched around), and when every lane has jumped past a stretch the
   walk skips it entirely.  A lane leaves the live set only by running
   off the end of the segment — the per-lane divergence a fused
   [test+jf] causes never branches the walk itself.

   Cost accounting mirrors the SIMD pricing of the accelerator guides:
   each pass over L live lanes costs [ceil(L/W)] units of
   {!Smod_sim.Cost_model.Policy_vector_op} (the caller charges
   [vr_units]).  At one lane the walk visits exactly the positions the
   scalar interpreter would and charges one unit each — the honest
   scalar fallback: identical op count to [Fuse.run_slot]. *)

type lane = { l_origin : Fuse.origin; l_attrs : (string * string) list }

type result = {
  vr_indices : int array;
  vr_passes : int;
  vr_units : int;
}

let default_width = 8

let m_scope = Smod_metrics.scope "keynote"
let m_vector_batches = Smod_metrics.Scope.counter m_scope "vector_batches"
let m_vector_lanes = Smod_metrics.Scope.counter m_scope "vector_lanes"
let m_vector_passes = Smod_metrics.Scope.counter m_scope "vector_passes"
let m_vector_units = Smod_metrics.Scope.counter m_scope "vector_units"

let run_residue plan snapshot ~width ~lanes =
  if width < 1 then invalid_arg "Vexec.run_residue: width < 1";
  let n = Array.length lanes in
  let levels = Fuse.levels plan in
  if n = 0 then { vr_indices = [||]; vr_passes = 0; vr_units = 0 }
  else begin
    let segs = Fuse.segments plan in
    (* SoA columns.  Node columns are seeded from the invariant snapshot:
       residue segments rewrite every variant entry before reading it
       (within a lane), and invariant entries are never written, so a
       per-lane copy is exactly the state [Fuse.run_slot] sees. *)
    let nodes = Array.init n (fun _ -> Array.copy snapshot.Fuse.s_nodes) in
    let stacks = Array.init n (fun _ -> Array.make (Fuse.max_seg plan + 1) 0) in
    let sp = Array.make n 0 in
    let acc = Array.make n 0 in
    let pc = Array.make n 0 in
    let result = Array.make n 0 in
    let passes = ref 0 and units = ref 0 in
    let operand_value k = function
      | Compile.O_str s -> s
      | Compile.O_attr a -> (
          match List.assoc_opt a lanes.(k).l_attrs with Some v -> v | None -> "")
    in
    let test k a op b =
      Fuse.holds op (Compile.compare_values (operand_value k a) (operand_value k b))
    in
    let otest k f op b =
      Fuse.holds op
        (Compile.compare_values
           (Fuse.origin_value lanes.(k).l_origin f)
           (operand_value k b))
    in
    (* One opcode for one lane: the scalar [Fuse.exec_seg] semantics over
       lane [k]'s columns.  Updates [pc.(k)]. *)
    let exec_one op k =
      let st = stacks.(k) in
      let push v =
        st.(sp.(k)) <- v;
        sp.(k) <- sp.(k) + 1
      in
      let pop () =
        sp.(k) <- sp.(k) - 1;
        st.(sp.(k))
      in
      let advance () = pc.(k) <- pc.(k) + 1 in
      match op with
      | Fuse.F_test (a, op, b) ->
          push (if test k a op b then 1 else 0);
          advance ()
      | Fuse.F_push_bool b ->
          push (if b then 1 else 0);
          advance ()
      | Fuse.F_not ->
          st.(sp.(k) - 1) <- (if st.(sp.(k) - 1) = 0 then 1 else 0);
          advance ()
      | Fuse.F_jfalse target ->
          if st.(sp.(k) - 1) = 0 then pc.(k) <- target
          else begin
            ignore (pop ());
            advance ()
          end
      | Fuse.F_jtrue target ->
          if st.(sp.(k) - 1) <> 0 then pc.(k) <- target
          else begin
            ignore (pop ());
            advance ()
          end
      | Fuse.F_node_begin ->
          acc.(k) <- 0;
          advance ()
      | Fuse.F_clause level ->
          if pop () <> 0 then acc.(k) <- max acc.(k) level;
          advance ()
      | Fuse.F_push_level v ->
          push v;
          advance ()
      | Fuse.F_load_node i ->
          push nodes.(k).(i);
          advance ()
      | Fuse.F_min2 ->
          let b = pop () in
          let a = pop () in
          push (min a b);
          advance ()
      | Fuse.F_max2 ->
          let b = pop () in
          let a = pop () in
          push (max a b);
          advance ()
      | Fuse.F_kof (kk, count) ->
          let members = ref [] in
          for _ = 1 to count do
            members := pop () :: !members
          done;
          push (Compile.kth_largest kk !members);
          advance ()
      | Fuse.F_node_end i ->
          let lic = pop () in
          nodes.(k).(i) <- min acc.(k) lic;
          advance ()
      | Fuse.F_node_end_const (i, lic) ->
          nodes.(k).(i) <- min acc.(k) lic;
          advance ()
      | Fuse.F_store_node i ->
          nodes.(k).(i) <- pop ();
          advance ()
      | Fuse.F_root (base, roots) ->
          push (Array.fold_left (fun m i -> max m nodes.(k).(i)) base roots);
          advance ()
      | Fuse.F_test_jf (a, op, b, target) ->
          if test k a op b then advance ()
          else begin
            push 0;
            pc.(k) <- target
          end
      | Fuse.F_test_jt (a, op, b, target) ->
          if test k a op b then begin
            push 1;
            pc.(k) <- target
          end
          else advance ()
      | Fuse.F_test_clause (a, op, b, level) ->
          if test k a op b then acc.(k) <- max acc.(k) level;
          advance ()
      | Fuse.F_load_max i ->
          st.(sp.(k) - 1) <- max st.(sp.(k) - 1) nodes.(k).(i);
          advance ()
      | Fuse.F_const_max c ->
          st.(sp.(k) - 1) <- max st.(sp.(k) - 1) c;
          advance ()
      | Fuse.F_const_min c ->
          st.(sp.(k) - 1) <- min st.(sp.(k) - 1) c;
          advance ()
      | Fuse.F_origin (f, op, b) ->
          push (if otest k f op b then 1 else 0);
          advance ()
      | Fuse.F_origin_jf (f, op, b, target) ->
          if otest k f op b then advance ()
          else begin
            push 0;
            pc.(k) <- target
          end
      | Fuse.F_origin_jt (f, op, b, target) ->
          if otest k f op b then begin
            push 1;
            pc.(k) <- target
          end
          else advance ()
      | Fuse.F_origin_clause (f, op, b, level) ->
          if otest k f op b then acc.(k) <- max acc.(k) level;
          advance ()
    in
    Array.iter
      (fun si ->
        let ops = segs.(si).Fuse.ops in
        let len = Array.length ops in
        Array.fill pc 0 n 0;
        Array.fill sp 0 n 0;
        (* Walk position = min pc over live lanes; jumps are forward, so
           it is monotone and every live lane's pc is >= it. *)
        let w = ref 0 in
        while !w < len do
          let live = ref 0 in
          for k = 0 to n - 1 do
            if pc.(k) < len then incr live
          done;
          incr passes;
          units := !units + ((!live + width - 1) / width);
          let op = ops.(!w) in
          for k = 0 to n - 1 do
            if pc.(k) = !w then exec_one op k
          done;
          (* Advance to the next position any live lane needs. *)
          let next = ref max_int in
          for k = 0 to n - 1 do
            if pc.(k) < len && pc.(k) < !next then next := pc.(k)
          done;
          w := !next
        done;
        for k = 0 to n - 1 do
          if sp.(k) > 0 then result.(k) <- stacks.(k).(sp.(k) - 1)
        done)
      (Fuse.residue_segments plan);
    let indices =
      Array.map (fun r -> max 0 (min (Array.length levels - 1) r)) result
    in
    Smod_metrics.Counter.incr m_vector_batches;
    Smod_metrics.Counter.add m_vector_lanes n;
    Smod_metrics.Counter.add m_vector_passes !passes;
    Smod_metrics.Counter.add m_vector_units !units;
    { vr_indices = indices; vr_passes = !passes; vr_units = !units }
  end

let level_of plan index = (Fuse.levels plan).(index)
