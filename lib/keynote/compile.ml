(* Flattening [Eval.query] into a postfix decision program.

   The compile-time walk below is the *same* depth-first traversal the
   interpreter performs at query time — same visit order (principals under
   [&&]/[||] right-to-left, matching the interpreter's argument evaluation
   order; k-of members left-to-right), same requester short-circuit, same
   cycle cut, same memoization — except that instead of computing values it
   emits opcodes.  That structural mirroring is what makes the differential
   guarantee in the .mli hold: the traversal is independent of the action
   attributes, so resolving it once is sound. *)

type operand = O_str of string | O_attr of string

type instr =
  | Test of operand * Ast.cmp * operand  (* push guard comparison result *)
  | Push_bool of bool
  | Not_top
  | Jfalse of int  (* top false: jump keeping it; else pop and fall through *)
  | Jtrue of int
  | Node_begin  (* clause accumulator := 0 *)
  | Clause of int  (* pop guard; if it held, accumulator := max acc level *)
  | Push_level of int
  | Load_node of int
  | Min2
  | Max2
  | Kof of int * int  (* (k, n): pop n values, push the k-th largest *)
  | Node_end of int  (* pop licensee value; node := min acc value *)
  | Node_end_const of int * int  (* licensee value folded at compile time *)
  | Store_node of int  (* pop a computed value into a shared node *)
  | Root of int * int array  (* push max of a constant and the given nodes *)

type t = { instrs : instr array; nnodes : int; levels : string array }

type outcome = { level : string; index : int; ops : int }

let mnemonic = function
  | Test _ -> "test"
  | Push_bool _ -> "push-bool"
  | Not_top -> "not"
  | Jfalse _ -> "jfalse"
  | Jtrue _ -> "jtrue"
  | Node_begin -> "node-begin"
  | Clause _ -> "clause"
  | Push_level _ -> "push-level"
  | Load_node _ -> "load-node"
  | Min2 -> "min"
  | Max2 -> "max"
  | Kof _ -> "k-of"
  | Node_end _ -> "node-end"
  | Node_end_const _ -> "node-end-const"
  | Store_node _ -> "store-node"
  | Root _ -> "root"

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

(* A value source resolved at compile time: either a constant compliance
   index or a node the program computes once per run. *)
type src = Const of int | Node of int

(* Licensee sub-expression after principal resolution and constant
   folding, ready to emit as stack code. *)
type lsrc =
  | L_const of int
  | L_node of int
  | L_min of lsrc * lsrc
  | L_max of lsrc * lsrc
  | L_kth of int * lsrc list

exception Unknown_level of string

(* ------------------------------------------------------------------ *)
(* Origin predicates                                                   *)
(* ------------------------------------------------------------------ *)

type origin_env = { known_modules : string list }

let origin_attrs = [ "origin_module"; "origin_ring"; "origin_transport" ]
let origin_transports = [ "msgq"; "ring"; "poller"; "attach" ]
let origin_ring_max = 3

exception Bad_origin of string

(* An origin predicate naming a module, ring, or transport the kernel can
   never report is a policy that can only ever misfire — same fail-closed
   discipline as an unknown compliance level: reject at compile time so the
   caller installs the deny-all stub instead of silently compiling a
   predicate that a typo turned into [False] (or worse, one the author
   believed was [False]). *)
let check_origin_literal env attr (lit : Ast.term) =
  let bad fmt = Printf.ksprintf (fun m -> raise (Bad_origin m)) fmt in
  match (attr, lit) with
  | _, Ast.Attr _ -> () (* attr-vs-attr comparisons are resolved at run time *)
  | "origin_module", Ast.Str s ->
      if s <> "user" && not (List.mem s env.known_modules) then
        bad "compile: origin predicate names unknown module %S" s
  | "origin_module", Ast.Int i ->
      bad "compile: origin_module compared against integer %d" i
  | "origin_ring", (Ast.Int _ | Ast.Str _) ->
      let v =
        match lit with
        | Ast.Int i -> Some i
        | Ast.Str s -> int_of_string_opt s
        | Ast.Attr _ -> None
      in
      (match v with
      | Some r when r >= 0 && r <= origin_ring_max -> ()
      | _ -> bad "compile: origin predicate names unknown ring (want 0..%d)" origin_ring_max)
  | "origin_transport", Ast.Str s ->
      if not (List.mem s origin_transports) then
        bad "compile: origin predicate names unknown transport %S" s
  | "origin_transport", Ast.Int i ->
      bad "compile: origin_transport compared against integer %d" i
  | _ -> ()

let rec check_origin_expr env = function
  | Ast.True | Ast.False -> ()
  | Ast.Not e -> check_origin_expr env e
  | Ast.And (a, b) | Ast.Or (a, b) ->
      check_origin_expr env a;
      check_origin_expr env b
  | Ast.Cmp (a, _, b) ->
      (match a with
      | Ast.Attr n when List.mem n origin_attrs -> check_origin_literal env n b
      | _ -> ());
      (match b with
      | Ast.Attr n when List.mem n origin_attrs -> check_origin_literal env n a
      | _ -> ())

let kth_largest k values =
  let sorted = List.sort (fun a b -> compare b a) values in
  match List.nth_opt sorted (k - 1) with Some v -> v | None -> 0

let compile ?origin ~policy ~credentials ~requesters ~levels () =
  if Array.length levels = 0 then Error "compile: empty levels"
  else begin
    let max_index = Array.length levels - 1 in
    let level_index name =
      let rec find i =
        if i > max_index then raise (Unknown_level name)
        else if levels.(i) = name then i
        else find (i + 1)
      in
      find 0
    in
    let code = ref (Array.make 64 Node_begin) in
    let len = ref 0 in
    let emit i =
      if !len >= Array.length !code then begin
        let bigger = Array.make (2 * Array.length !code) Node_begin in
        Array.blit !code 0 bigger 0 !len;
        code := bigger
      end;
      !code.(!len) <- i;
      incr len
    in
    let patch pos i = !code.(pos) <- i in
    let nnodes = ref 0 in
    let new_node () =
      let i = !nnodes in
      incr nnodes;
      i
    in
    let rec comp_expr (e : Ast.expr) =
      match e with
      | Ast.True -> emit (Push_bool true)
      | Ast.False -> emit (Push_bool false)
      | Ast.Cmp (a, op, b) ->
          let operand = function
            | Ast.Attr n -> O_attr n
            | Ast.Str s -> O_str s
            | Ast.Int i -> O_str (string_of_int i)
          in
          emit (Test (operand a, op, operand b))
      | Ast.Not e ->
          comp_expr e;
          emit Not_top
      | Ast.And (a, b) ->
          comp_expr a;
          let j = !len in
          emit (Jfalse 0);
          comp_expr b;
          patch j (Jfalse !len)
      | Ast.Or (a, b) ->
          comp_expr a;
          let j = !len in
          emit (Jtrue 0);
          comp_expr b;
          patch j (Jtrue !len)
    in
    let rec emit_lsrc = function
      | L_const c -> emit (Push_level c)
      | L_node i -> emit (Load_node i)
      | L_min (a, b) ->
          emit_lsrc a;
          emit_lsrc b;
          emit Min2
      | L_max (a, b) ->
          emit_lsrc a;
          emit_lsrc b;
          emit Max2
      | L_kth (k, ls) ->
          List.iter emit_lsrc ls;
          emit (Kof (k, List.length ls))
    in
    let mk_min a b =
      match (a, b) with
      | L_const 0, _ | _, L_const 0 -> L_const 0
      | L_const x, L_const y -> L_const (min x y)
      | _ -> L_min (a, b)
    in
    let mk_max a b =
      match (a, b) with
      | L_const x, L_const y -> L_const (max x y)
      | L_const 0, s | s, L_const 0 -> s
      | _ -> L_max (a, b)
    in
    let mk_kof k ls =
      let const = function L_const c -> Some c | _ -> None in
      match
        List.fold_left
          (fun acc l ->
            match (acc, const l) with Some cs, Some c -> Some (c :: cs) | _ -> None)
          (Some []) ls
      with
      | Some cs -> L_const (kth_largest k (List.rev cs))
      | None -> L_kth (k, ls)
    in
    (* The interpreter's [memo]/[in_progress] tables, reproduced over
       emission: a memoized principal becomes a shared node (computed once
       per run, exactly like a memo hit), an in-progress one the cycle
       constant. *)
    let in_progress = Hashtbl.create 16 in
    let memo : (string, src) Hashtbl.t = Hashtbl.create 16 in
    let rec principal_src p =
      if List.mem p requesters then Const max_index
      else if Hashtbl.mem in_progress p then Const 0
      else begin
        match Hashtbl.find_opt memo p with
        | Some s -> s
        | None ->
            Hashtbl.replace in_progress p ();
            let srcs =
              List.filter_map
                (fun (a : Ast.assertion) ->
                  if a.authorizer = p then Some (assertion_src a) else None)
                credentials
            in
            Hashtbl.remove in_progress p;
            let base =
              List.fold_left
                (fun acc s -> match s with Const c -> max acc c | Node _ -> acc)
                0 srcs
            in
            let nodes = List.filter_map (function Node i -> Some i | Const _ -> None) srcs in
            let s =
              match (nodes, base) with
              | [], _ -> Const base
              | [ i ], 0 -> Node i
              | _ ->
                  let idx = new_node () in
                  emit (Push_level base);
                  List.iter
                    (fun i ->
                      emit (Load_node i);
                      emit Max2)
                    nodes;
                  emit (Store_node idx);
                  Node idx
            in
            Hashtbl.replace memo p s;
            s
      end
    and licensees_src = function
      | Ast.L_empty -> L_const 0
      | Ast.L_principal p -> (
          match principal_src p with Const c -> L_const c | Node i -> L_node i)
      | Ast.L_and (a, b) ->
          (* Right-to-left, matching the interpreter's evaluation order of
             [min (licensees_value a) (licensees_value b)] — the order
             determines where delegation cycles are cut. *)
          let sb = licensees_src b in
          let sa = licensees_src a in
          mk_min sa sb
      | Ast.L_or (a, b) ->
          let sb = licensees_src b in
          let sa = licensees_src a in
          mk_max sa sb
      | Ast.L_kof (k, ls) -> mk_kof k (List.map licensees_src ls)
    and assertion_src (a : Ast.assertion) =
      (* Licensees resolve before conditions emit, mirroring the
         interpreter's argument order in
         [min (conditions_value a) (licensees_value a.licensees)]. *)
      let lic = licensees_src a.licensees in
      match (a.conditions, lic) with
      | [], _ | _, L_const 0 ->
          (* conditions of [] evaluate to 0; min against a licensee value
             of 0 is 0 — either way no clause can raise the result. *)
          Const 0
      | clauses, lic ->
          let idx = new_node () in
          emit Node_begin;
          List.iter
            (fun (c : Ast.clause) ->
              comp_expr c.Ast.guard;
              emit (Clause (level_index c.Ast.value)))
            clauses;
          (match lic with
          | L_const c -> emit (Node_end_const (idx, c))
          | lic ->
              emit_lsrc lic;
              emit (Node_end idx));
          Node idx
    in
    match
      (* Total counterpart of the interpreter's lazy [Invalid_argument]:
         validate every clause level up front, including clauses constant
         folding would drop, so a bad level always fails closed here.
         Origin predicates get the same treatment when the caller supplies
         the kernel's view of valid origins. *)
      List.iter
        (fun (a : Ast.assertion) ->
          List.iter
            (fun (c : Ast.clause) ->
              ignore (level_index c.Ast.value);
              match origin with
              | Some env -> check_origin_expr env c.Ast.guard
              | None -> ())
            a.conditions)
        (policy @ credentials);
      let roots =
        List.filter_map
          (fun (a : Ast.assertion) ->
            if a.authorizer = "POLICY" then Some (assertion_src a) else None)
          policy
      in
      let base =
        List.fold_left
          (fun acc s -> match s with Const c -> max acc c | Node _ -> acc)
          0 roots
      in
      let nodes = List.filter_map (function Node i -> Some i | Const _ -> None) roots in
      emit (Root (base, Array.of_list nodes))
    with
    | () -> Ok { instrs = Array.sub !code 0 !len; nnodes = !nnodes; levels }
    | exception Unknown_level name ->
        Error (Printf.sprintf "compile: unknown compliance level %S" name)
    | exception Bad_origin msg -> Error msg
  end

(* ------------------------------------------------------------------ *)
(* The interpreter loop                                                *)
(* ------------------------------------------------------------------ *)

(* Same comparison rule as [Eval]: numeric iff both sides parse as
   integers, lexicographic otherwise; absent attributes read as "". *)
let compare_values a b =
  match (int_of_string_opt a, int_of_string_opt b) with
  | Some ia, Some ib -> compare ia ib
  | _ -> compare a b

let m_scope = Smod_metrics.scope "keynote"
let m_compiled_runs = Smod_metrics.Scope.counter m_scope "compiled_runs"
let m_compiled_ops = Smod_metrics.Scope.counter m_scope "compiled_ops"

let run t ~attrs =
  let n = Array.length t.instrs in
  let nodes = Array.make (max t.nnodes 1) 0 in
  (* Every opcode pushes at most one value, so [n] bounds the stack. *)
  let stack = Array.make (n + 1) 0 in
  let sp = ref 0 in
  let push v =
    stack.(!sp) <- v;
    incr sp
  in
  let pop () =
    decr sp;
    stack.(!sp)
  in
  let operand_value = function
    | O_str s -> s
    | O_attr a -> ( match List.assoc_opt a attrs with Some v -> v | None -> "")
  in
  let acc = ref 0 in
  let ops = ref 0 in
  let pc = ref 0 in
  while !pc < n do
    incr ops;
    match t.instrs.(!pc) with
    | Test (a, op, b) ->
        let c = compare_values (operand_value a) (operand_value b) in
        let holds =
          match op with
          | Ast.Eq -> c = 0
          | Ast.Ne -> c <> 0
          | Ast.Lt -> c < 0
          | Ast.Le -> c <= 0
          | Ast.Gt -> c > 0
          | Ast.Ge -> c >= 0
        in
        push (if holds then 1 else 0);
        incr pc
    | Push_bool b ->
        push (if b then 1 else 0);
        incr pc
    | Not_top ->
        stack.(!sp - 1) <- (if stack.(!sp - 1) = 0 then 1 else 0);
        incr pc
    | Jfalse target ->
        if stack.(!sp - 1) = 0 then pc := target
        else begin
          ignore (pop ());
          incr pc
        end
    | Jtrue target ->
        if stack.(!sp - 1) <> 0 then pc := target
        else begin
          ignore (pop ());
          incr pc
        end
    | Node_begin ->
        acc := 0;
        incr pc
    | Clause level ->
        if pop () <> 0 then acc := max !acc level;
        incr pc
    | Push_level v ->
        push v;
        incr pc
    | Load_node i ->
        push nodes.(i);
        incr pc
    | Min2 ->
        let b = pop () in
        let a = pop () in
        push (min a b);
        incr pc
    | Max2 ->
        let b = pop () in
        let a = pop () in
        push (max a b);
        incr pc
    | Kof (k, count) ->
        let members = ref [] in
        for _ = 1 to count do
          members := pop () :: !members
        done;
        push (kth_largest k !members);
        incr pc
    | Node_end i ->
        let lic = pop () in
        nodes.(i) <- min !acc lic;
        incr pc
    | Node_end_const (i, lic) ->
        nodes.(i) <- min !acc lic;
        incr pc
    | Store_node i ->
        nodes.(i) <- pop ();
        incr pc
    | Root (base, roots) ->
        let v = Array.fold_left (fun m i -> max m nodes.(i)) base roots in
        push v;
        incr pc
  done;
  let raw = if !sp > 0 then stack.(!sp - 1) else 0 in
  let index = max 0 (min (Array.length t.levels - 1) raw) in
  Smod_metrics.Counter.incr m_compiled_runs;
  Smod_metrics.Counter.add m_compiled_ops !ops;
  { level = t.levels.(index); index; ops = !ops }

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let length t = Array.length t.instrs
let node_count t = t.nnodes
let instrs t = t.instrs
let levels t = t.levels

let op_counts t =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun i ->
      let m = mnemonic i in
      Hashtbl.replace tbl m (1 + Option.value ~default:0 (Hashtbl.find_opt tbl m)))
    t.instrs;
  Hashtbl.fold (fun m n acc -> (m, n) :: acc) tbl []
  |> List.sort (fun (ma, na) (mb, nb) ->
         if na <> nb then compare nb na else compare ma mb)
