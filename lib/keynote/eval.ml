type result = { level : string; index : int; assertions_evaluated : int }

(* Observability (lib/metrics): the section-5 prediction — dispatch cost
   grows with the number of assertions the policy check evaluates — in
   counter form. *)
let m_scope = Smod_metrics.scope "keynote"
let m_queries = Smod_metrics.Scope.counter m_scope "queries"
let m_assertions_evaluated = Smod_metrics.Scope.counter m_scope "assertions_evaluated"

let term_value ~attrs = function
  | Ast.Str s -> s
  | Ast.Int i -> string_of_int i
  | Ast.Attr a -> ( match List.assoc_opt a attrs with Some v -> v | None -> "")

let compare_values a b =
  match (int_of_string_opt a, int_of_string_opt b) with
  | Some ia, Some ib -> compare ia ib
  | _ -> compare a b

let rec eval_expr ~attrs = function
  | Ast.True -> true
  | Ast.False -> false
  | Ast.Not e -> not (eval_expr ~attrs e)
  | Ast.And (a, b) -> eval_expr ~attrs a && eval_expr ~attrs b
  | Ast.Or (a, b) -> eval_expr ~attrs a || eval_expr ~attrs b
  | Ast.Cmp (ta, op, tb) -> (
      let va = term_value ~attrs ta and vb = term_value ~attrs tb in
      let c = compare_values va vb in
      match op with
      | Ast.Eq -> c = 0
      | Ast.Ne -> c <> 0
      | Ast.Lt -> c < 0
      | Ast.Le -> c <= 0
      | Ast.Gt -> c > 0
      | Ast.Ge -> c >= 0)

let kth_largest k values =
  let sorted = List.sort (fun a b -> compare b a) values in
  match List.nth_opt sorted (k - 1) with Some v -> v | None -> 0

let query ~policy ~credentials ~attrs ~requesters ~levels =
  if Array.length levels = 0 then invalid_arg "Eval.query: empty levels";
  let max_index = Array.length levels - 1 in
  let level_index name =
    let rec find i =
      if i > max_index then
        invalid_arg (Printf.sprintf "Eval.query: unknown compliance level %S" name)
      else if levels.(i) = name then i
      else find (i + 1)
    in
    find 0
  in
  let evaluated = ref 0 in
  let conditions_value (a : Ast.assertion) =
    List.fold_left
      (fun acc (c : Ast.clause) ->
        if eval_expr ~attrs c.guard then max acc (level_index c.value) else acc)
      0 a.conditions
  in
  (* Principal values with cycle protection: principals currently being
     evaluated contribute minimum trust. *)
  let in_progress = Hashtbl.create 16 in
  let memo = Hashtbl.create 16 in
  let rec principal_value p =
    if List.mem p requesters then max_index
    else if Hashtbl.mem in_progress p then 0
    else begin
      match Hashtbl.find_opt memo p with
      | Some v -> v
      | None ->
          Hashtbl.replace in_progress p ();
          let v =
            List.fold_left
              (fun acc (a : Ast.assertion) ->
                if a.authorizer = p then max acc (assertion_value a) else acc)
              0 credentials
          in
          Hashtbl.remove in_progress p;
          Hashtbl.replace memo p v;
          v
    end
  and licensees_value = function
    | Ast.L_empty -> 0
    | Ast.L_principal p -> principal_value p
    | Ast.L_and (a, b) -> min (licensees_value a) (licensees_value b)
    | Ast.L_or (a, b) -> max (licensees_value a) (licensees_value b)
    | Ast.L_kof (k, ls) -> kth_largest k (List.map licensees_value ls)
  and assertion_value (a : Ast.assertion) =
    incr evaluated;
    min (conditions_value a) (licensees_value a.licensees)
  in
  let index =
    List.fold_left
      (fun acc (a : Ast.assertion) ->
        if a.authorizer = "POLICY" then max acc (assertion_value a) else acc)
      0 policy
  in
  Smod_metrics.Counter.incr m_queries;
  Smod_metrics.Counter.add m_assertions_evaluated !evaluated;
  { level = levels.(index); index; assertions_evaluated = !evaluated }
