(** Principal keys and assertion signatures.

    Credentials (assertions whose authorizer is not "POLICY") must be
    signed by their authorizer.  In the simulated single-host deployment
    signatures are HMAC-SHA256 tags over the canonical assertion body,
    with the per-principal secrets held by the trusted host (paper §4.4:
    the OS hosting the module must be a trusted party, and the keys live
    only in kernel space). *)

type t

val create : unit -> t
val add_principal : t -> name:string -> secret:string -> unit

val rotate_principal : t -> name:string -> secret:string -> unit
(** Replace an existing principal's key.  Unlike {!add_principal} this is
    strict: raises [Not_found] if the principal was never registered, so a
    cluster-replicated rotation cannot silently mint a new principal on a
    shard that missed the original add. *)

val remove_principal : t -> name:string -> unit
(** Drop a principal's key.  A no-op (no generation bump, no hooks) if the
    principal is absent; otherwise every credential signed by it stops
    verifying and the generation bump invalidates cached decisions. *)

val has_principal : t -> string -> bool

val generation : t -> int
(** Bumped every time the key material changes.  Cached policy decisions
    derived from credential signatures are only valid for the generation
    they were computed under. *)

val on_change : t -> (unit -> unit) -> unit
(** Register a hook fired after every key-material change.  smodd
    (lib/pool) uses this to flush its policy-decision cache. *)

val sign : t -> Ast.assertion -> Ast.assertion
(** Fills in the signature field.  Raises [Not_found] if the authorizer
    has no key registered. *)

val verify : t -> Ast.assertion -> bool
(** True iff the assertion carries a signature that matches its canonical
    body under its authorizer's key.  POLICY assertions are locally
    trusted and verify unconditionally (RFC 2704 §4.6.1). *)
