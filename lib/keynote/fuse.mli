(** Fused batch execution of compiled decision programs.

    [Compile.run] is one full interpreter pass per admission query; under
    a 64-slot ring batch that is 64 passes over a program most of whose
    opcodes depend only on batch-invariant inputs (credential chain,
    module identity, call origin, static attributes).  [plan] re-lowers a
    compiled program into contiguous segments, fuses common opcode pairs
    into superoperators, interns segment arrays in a domain-local
    structural-sharing arena, and partitions the segments into a
    batch-invariant prefix and a per-slot residue.  [begin_batch] runs the
    prefix once into a {!snapshot}; [run_slot] replays only the residue
    per slot.

    Cost accounting is the caller's job, mirroring [Compile.run]: charge
    [Cost_model.Policy_fused_setup] plus [s_setup_ops] compiled-op units
    when a snapshot is built, and [outcome.ops] compiled-op units per
    slot.  Each superoperator executes (and is charged as) {e one} op —
    that, plus prefix hoisting, is the entire speedup; there is no
    hidden discount.

    Verdict parity: for any program, origin, and attribute list that
    includes the origin pairs (as the dispatcher guarantees),
    [run_slot] returns exactly [Compile.run]'s outcome modulo [ops] —
    asserted over randomized programs by [test/test_compile.ml]. *)

type origin = { o_module : string; o_ring : int; o_transport : string }
(** Caller provenance, resolved by the kernel from session state at
    dispatch — never from client-supplied data, so a compromised client
    cannot forge its origin.  [o_module] is the SecModule whose handle
    made the call, or ["user"] for a plain client process. *)

val no_origin : origin
(** ["user"] at ring 3 over msgq — the provenance of a plain process. *)

type ofield = OF_module | OF_ring | OF_transport

type fop =
  (* base opcodes, unchanged semantics (jumps segment-relative) *)
  | F_test of Compile.operand * Ast.cmp * Compile.operand
  | F_push_bool of bool
  | F_not
  | F_jfalse of int
  | F_jtrue of int
  | F_node_begin
  | F_clause of int
  | F_push_level of int
  | F_load_node of int
  | F_min2
  | F_max2
  | F_kof of int * int
  | F_node_end of int
  | F_node_end_const of int * int
  | F_store_node of int
  | F_root of int * int array
  (* superoperators: two base opcodes, one dispatch, one op charged *)
  | F_test_jf of Compile.operand * Ast.cmp * Compile.operand * int
  | F_test_jt of Compile.operand * Ast.cmp * Compile.operand * int
  | F_test_clause of Compile.operand * Ast.cmp * Compile.operand * int
  | F_load_max of int
  | F_const_max of int
  | F_const_min of int
  (* origin predicates, resolved from the kernel-held origin record *)
  | F_origin of ofield * Ast.cmp * Compile.operand
  | F_origin_jf of ofield * Ast.cmp * Compile.operand * int
  | F_origin_jt of ofield * Ast.cmp * Compile.operand * int
  | F_origin_clause of ofield * Ast.cmp * Compile.operand * int
      (** The lowered opcode set, public so the batch-major executor
          ({!Vexec}) can re-interpret residue segments lane-major.  All
          jumps are segment-relative and — a property [Compile.compile]
          guarantees and {!Vexec} relies on — strictly forward. *)

type seg = { ops : fop array; invariant : bool }

type t
(** A fused plan for one compiled program.  Immutable and, like the
    program it lowers, safe to cache per (credential, policy revision,
    keystore generation). *)

type snapshot = {
  s_nodes : int array;
      (** value-node results; invariant entries are final, variant entries
          are scratch space the residue rewrites every slot *)
  s_setup_ops : int;  (** prefix opcodes executed building the snapshot *)
}

val plan : Compile.t -> varying:string list -> t
(** Lower, fuse, intern, and partition.  [varying] names the action
    attributes that change slot to slot (the dispatcher passes
    ["function"] and the volatile attributes); every opcode whose value
    could depend on one — directly or through a value node — lands in the
    residue.  Planning is total: a program whose shape defeats
    segmentation degrades to an all-residue plan (per-slot execution,
    still superoperator-fused), never to wrong answers. *)

val begin_batch : t -> origin:origin -> attrs:(string * string) list -> snapshot
(** Evaluate the batch-invariant prefix once.  [attrs] here are the
    batch-invariant attributes (module, phase, static policy attributes,
    origin pairs); varying attributes are absent by construction — no
    prefix opcode reads them. *)

val run_slot :
  t -> snapshot -> origin:origin -> attrs:(string * string) list -> Compile.outcome
(** Evaluate the per-slot residue against one slot's full attribute list.
    [ops] is the residue opcode count — the per-slot cost driver.  The
    snapshot may be reused across any number of slots and batches until
    the program it came from is invalidated. *)

val run : t -> origin:origin -> attrs:(string * string) list -> snapshot * Compile.outcome
(** [begin_batch] + [run_slot] in one step, for scalar callers and tests. *)

(** {2 Plan internals (consumed by {!Vexec})} *)

val segments : t -> seg array
val residue_segments : t -> int array
(** Indices into {!segments} of the per-slot residue, program order
    (includes the root segment). *)

val levels : t -> string array
val node_count : t -> int
val max_seg : t -> int
(** Longest segment in opcodes — bounds any per-lane evaluation stack. *)

val origin_value : origin -> ofield -> string
val holds : Ast.cmp -> int -> bool
(** [holds cmp c] applies [cmp] to a [Compile.compare_values] result —
    exported so every engine shares one comparison semantics. *)

val residue_reads : t -> string list -> bool
(** Does any residue opcode read one of the named attributes?  Used by
    the vector-eligibility test: a residue that reads a volatile
    attribute ([calls_so_far]) has a lane-order data dependency and must
    stay slot-major.  Direct reads suffice — an opcode reading the
    attribute is itself in the residue by construction. *)

(** {2 Introspection} *)

type stats = {
  segments : int;
  invariant_segments : int;
  total_fops : int;
  invariant_fops : int;  (** static prefix size; fraction of [total_fops] *)
  superops : (string * int) list;
      (** fused-opcode histogram by mnemonic, most frequent first *)
  origin_fops : int;
}

val stats : t -> stats

val prefix_fraction : t -> float
(** [invariant_fops / total_fops], 0 for an empty plan. *)

type arena_stats = {
  a_segments : int;  (** distinct segment arrays interned on this domain *)
  a_hits : int;
  a_misses : int;
  a_bytes_saved : int;  (** estimated bytes deduplicated (32 B/opcode) *)
}

val arena_stats : unit -> arena_stats
(** The calling domain's structural-sharing arena.  Registry-wide in the
    sense that every plan built on this domain shares it, whichever
    module or session triggered compilation. *)

val arena_reset : unit -> unit
(** Drop the calling domain's arena (tests and the E24 memory curve, which
    need a clean baseline before measuring). *)

val arena_hit_rate_pct : unit -> float option
(** Hit rate of the calling domain's arena as a percentage, or [None]
    when the arena has never been probed — so renderers ([smodctl policy
    status]) print a placeholder instead of a meaningless rate. *)
