exception Parse_error of { line : int; message : string }

type diagnostic = { line : int; message : string }

let pp_diagnostic ppf (d : diagnostic) = Format.fprintf ppf "line %d: %s" d.line d.message

let fail line fmt = Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Tokenizer for the expression dialects                               *)
(* ------------------------------------------------------------------ *)

type token =
  | IDENT of string
  | STRING of string
  | INT of int
  | KOF of int  (* "3-of" *)
  | ANDAND
  | OROR
  | BANG
  | LPAREN
  | RPAREN
  | EQEQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | ARROW
  | SEMI
  | COMMA
  | EOF

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | STRING s -> Printf.sprintf "string %S" s
  | INT i -> Printf.sprintf "integer %d" i
  | KOF k -> Printf.sprintf "%d-of" k
  | ANDAND -> "&&"
  | OROR -> "||"
  | BANG -> "!"
  | LPAREN -> "("
  | RPAREN -> ")"
  | EQEQ -> "=="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | ARROW -> "->"
  | SEMI -> ";"
  | COMMA -> ","
  | EOF -> "end of input"

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '.'

let tokenize ~line s =
  let n = String.length s in
  let toks = ref [] in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let emit t = toks := t :: !toks in
  let starts_with prefix =
    !pos + String.length prefix <= n && String.sub s !pos (String.length prefix) = prefix
  in
  while !pos < n do
    match s.[!pos] with
    | ' ' | '\t' | '\n' | '\r' -> incr pos
    | '"' ->
        let buf = Buffer.create 16 in
        incr pos;
        let rec scan () =
          if !pos >= n then fail line "unterminated string literal"
          else begin
            match s.[!pos] with
            | '"' -> incr pos
            | '\\' when !pos + 1 < n ->
                Buffer.add_char buf s.[!pos + 1];
                pos := !pos + 2;
                scan ()
            | c ->
                Buffer.add_char buf c;
                incr pos;
                scan ()
          end
        in
        scan ();
        emit (STRING (Buffer.contents buf))
    | '0' .. '9' ->
        let start = !pos in
        while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
          incr pos
        done;
        let v =
          match int_of_string_opt (String.sub s start (!pos - start)) with
          | Some v -> v
          | None -> fail line "integer literal out of range"
        in
        if starts_with "-of" then begin
          pos := !pos + 3;
          emit (KOF v)
        end
        else emit (INT v)
    | '-' when starts_with "->" ->
        pos := !pos + 2;
        emit ARROW
    | '-' when !pos + 1 < n && s.[!pos + 1] >= '0' && s.[!pos + 1] <= '9' ->
        incr pos;
        let start = !pos in
        while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
          incr pos
        done;
        (match int_of_string_opt (String.sub s start (!pos - start)) with
        | Some v -> emit (INT (-v))
        | None -> fail line "integer literal out of range")
    | '&' when starts_with "&&" ->
        pos := !pos + 2;
        emit ANDAND
    | '|' when starts_with "||" ->
        pos := !pos + 2;
        emit OROR
    | '=' when starts_with "==" ->
        pos := !pos + 2;
        emit EQEQ
    | '!' when starts_with "!=" ->
        pos := !pos + 2;
        emit NE
    | '!' ->
        incr pos;
        emit BANG
    | '<' when starts_with "<=" ->
        pos := !pos + 2;
        emit LE
    | '<' ->
        incr pos;
        emit LT
    | '>' when starts_with ">=" ->
        pos := !pos + 2;
        emit GE
    | '>' ->
        incr pos;
        emit GT
    | '(' ->
        incr pos;
        emit LPAREN
    | ')' ->
        incr pos;
        emit RPAREN
    | ';' ->
        incr pos;
        emit SEMI
    | ',' ->
        incr pos;
        emit COMMA
    | c when is_ident_char c ->
        let start = !pos in
        while !pos < n && is_ident_char s.[!pos] do
          incr pos
        done;
        emit (IDENT (String.sub s start (!pos - start)))
    | c -> (
        ignore (peek ());
        fail line "unexpected character %C" c)
  done;
  List.rev (EOF :: !toks)

(* ------------------------------------------------------------------ *)
(* Recursive-descent parsers over a token cursor                       *)
(* ------------------------------------------------------------------ *)

type cursor = { mutable toks : token list; line : int; mutable depth : int }

let cursor ~line toks = { toks; line; depth = 0 }

let peek_tok c = match c.toks with t :: _ -> t | [] -> EOF

let advance c = match c.toks with _ :: rest -> c.toks <- rest | [] -> ()

(* Hostile input can nest ['!'], parentheses and [k-of] groups arbitrarily
   deep; the recursive-descent productions below would otherwise turn that
   into a stack overflow, which no caller can catch usefully.  The [&&]/[||]
   chains are parsed iteratively, so only bracketing nests. *)
let max_depth = 256

let enter c =
  c.depth <- c.depth + 1;
  if c.depth > max_depth then fail c.line "nesting deeper than %d levels" max_depth

let leave c = c.depth <- c.depth - 1

let expect c t =
  let got = peek_tok c in
  if got = t then advance c
  else fail c.line "expected %s but found %s" (token_to_string t) (token_to_string got)

let parse_term c =
  match peek_tok c with
  | IDENT "true" | IDENT "false" -> fail c.line "boolean literal used as comparison term"
  | IDENT name ->
      advance c;
      Ast.Attr name
  | STRING s ->
      advance c;
      Ast.Str s
  | INT i ->
      advance c;
      Ast.Int i
  | t -> fail c.line "expected a term, found %s" (token_to_string t)

let parse_cmp_op c =
  match peek_tok c with
  | EQEQ ->
      advance c;
      Ast.Eq
  | NE ->
      advance c;
      Ast.Ne
  | LT ->
      advance c;
      Ast.Lt
  | LE ->
      advance c;
      Ast.Le
  | GT ->
      advance c;
      Ast.Gt
  | GE ->
      advance c;
      Ast.Ge
  | t -> fail c.line "expected a comparison operator, found %s" (token_to_string t)

(* [a && b && c] chains are collected iteratively and folded back into
   the same right-associated tree the old right-recursive productions
   built, so arbitrarily long chains cost heap, not stack. *)
let fold_right_assoc mk = function
  | [] -> assert false
  | last :: rev_rest -> List.fold_left (fun r l -> mk l r) last rev_rest

let rec parse_expr c = parse_or c

and parse_or c =
  let rec collect acc =
    let acc = parse_and c :: acc in
    if peek_tok c = OROR then begin
      advance c;
      collect acc
    end
    else acc
  in
  match collect [] with
  | [ e ] -> e
  | rev -> fold_right_assoc (fun a b -> Ast.Or (a, b)) rev

and parse_and c =
  let rec collect acc =
    let acc = parse_not c :: acc in
    if peek_tok c = ANDAND then begin
      advance c;
      collect acc
    end
    else acc
  in
  match collect [] with
  | [ e ] -> e
  | rev -> fold_right_assoc (fun a b -> Ast.And (a, b)) rev

and parse_not c =
  match peek_tok c with
  | BANG ->
      advance c;
      enter c;
      let e = parse_not c in
      leave c;
      Ast.Not e
  | LPAREN ->
      advance c;
      enter c;
      let e = parse_expr c in
      leave c;
      expect c RPAREN;
      e
  | IDENT "true" ->
      advance c;
      Ast.True
  | IDENT "false" ->
      advance c;
      Ast.False
  | _ ->
      let a = parse_term c in
      let op = parse_cmp_op c in
      let b = parse_term c in
      Ast.Cmp (a, op, b)

let rec parse_licensees c = parse_lic_or c

and parse_lic_or c =
  let rec collect acc =
    let acc = parse_lic_and c :: acc in
    if peek_tok c = OROR then begin
      advance c;
      collect acc
    end
    else acc
  in
  match collect [] with
  | [ l ] -> l
  | rev -> fold_right_assoc (fun a b -> Ast.L_or (a, b)) rev

and parse_lic_and c =
  let rec collect acc =
    let acc = parse_lic_atom c :: acc in
    if peek_tok c = ANDAND then begin
      advance c;
      collect acc
    end
    else acc
  in
  match collect [] with
  | [ l ] -> l
  | rev -> fold_right_assoc (fun a b -> Ast.L_and (a, b)) rev

and parse_lic_atom c =
  match peek_tok c with
  | STRING p ->
      advance c;
      Ast.L_principal p
  | IDENT p ->
      advance c;
      Ast.L_principal p
  | LPAREN ->
      advance c;
      enter c;
      let l = parse_licensees c in
      leave c;
      expect c RPAREN;
      l
  | KOF k ->
      advance c;
      enter c;
      expect c LPAREN;
      let rec members acc =
        let m = parse_licensees c in
        match peek_tok c with
        | COMMA ->
            advance c;
            members (m :: acc)
        | RPAREN ->
            advance c;
            List.rev (m :: acc)
        | t -> fail c.line "expected ',' or ')' in k-of, found %s" (token_to_string t)
      in
      let ms = members [] in
      leave c;
      if k <= 0 || k > List.length ms then fail c.line "k-of threshold %d out of range" k;
      Ast.L_kof (k, ms)
  | t -> fail c.line "expected a licensee, found %s" (token_to_string t)

let parse_clauses c =
  let rec loop acc =
    if peek_tok c = EOF then List.rev acc
    else begin
      let guard = parse_expr c in
      expect c ARROW;
      let value =
        match peek_tok c with
        | STRING s ->
            advance c;
            s
        | t -> fail c.line "expected a compliance level string, found %s" (token_to_string t)
      in
      expect c SEMI;
      loop ({ Ast.guard; value } :: acc)
    end
  in
  loop []

(* ------------------------------------------------------------------ *)
(* Field-level assertion parsing                                       *)
(* ------------------------------------------------------------------ *)

let split_fields ~first_line text =
  (* field: value, with indented continuation lines. *)
  let lines = String.split_on_char '\n' text in
  let fields = ref [] in
  let cur : (int * string * Buffer.t) option ref = ref None in
  let flush () =
    match !cur with
    | Some (l, name, buf) ->
        fields := (l, name, String.trim (Buffer.contents buf)) :: !fields;
        cur := None
    | None -> ()
  in
  List.iteri
    (fun i raw ->
      let lineno = first_line + i in
      if String.trim raw = "" then ()
      else if raw.[0] = ' ' || raw.[0] = '\t' then begin
        match !cur with
        | Some (_, _, buf) ->
            Buffer.add_char buf ' ';
            Buffer.add_string buf (String.trim raw)
        | None -> fail lineno "continuation line with no field"
      end
      else begin
        match String.index_opt raw ':' with
        | None -> fail lineno "expected 'field: value'"
        | Some i_colon ->
            flush ();
            let name = String.lowercase_ascii (String.trim (String.sub raw 0 i_colon)) in
            let buf = Buffer.create 64 in
            Buffer.add_string buf
              (String.sub raw (i_colon + 1) (String.length raw - i_colon - 1));
            cur := Some (lineno, name, buf)
      end)
    lines;
  flush ();
  List.rev !fields

let unquote ~line s =
  let s = String.trim s in
  if String.length s >= 2 && s.[0] = '"' && s.[String.length s - 1] = '"' then
    String.sub s 1 (String.length s - 2)
  else if s = "" then fail line "empty field"
  else s

(* local-constants: NAME = "value" pairs, substituted after all fields
   are parsed (field order is free in RFC 2704). *)
let parse_constants ~line value =
  let c = cursor ~line (tokenize ~line value) in
  let rec loop acc =
    match peek_tok c with
    | EOF -> List.rev acc
    | IDENT name -> (
        advance c;
        (match peek_tok c with
        | EQEQ -> fail c.line "local-constants use '=', not '=='"
        | _ -> ());
        (* the tokenizer has no bare '='; re-lex by expecting STRING next
           after an optional EQEQ-free gap: accept NAME "value" or
           NAME == "value"?  RFC writes NAME = "value"; our tokenizer
           folds '=' '=' into EQEQ only; a single '=' is unknown.  To keep
           the lexer simple the dialect here is: NAME "value". *)
        match peek_tok c with
        | STRING v ->
            advance c;
            loop ((name, v) :: acc)
        | t -> fail c.line "expected a quoted value after %s, found %s" name (token_to_string t))
    | t -> fail c.line "expected a constant name, found %s" (token_to_string t)
  in
  loop []

let substitute_constants consts assertion =
  if consts = [] then assertion
  else begin
    let subst_name n = match List.assoc_opt n consts with Some v -> v | None -> n in
    let rec subst_lic = function
      | Ast.L_empty -> Ast.L_empty
      | Ast.L_principal p -> Ast.L_principal (subst_name p)
      | Ast.L_and (a, b) -> Ast.L_and (subst_lic a, subst_lic b)
      | Ast.L_or (a, b) -> Ast.L_or (subst_lic a, subst_lic b)
      | Ast.L_kof (k, ls) -> Ast.L_kof (k, List.map subst_lic ls)
    in
    let subst_term = function
      | Ast.Attr n as t -> (
          match List.assoc_opt n consts with Some v -> Ast.Str v | None -> t)
      | t -> t
    in
    let rec subst_expr = function
      | (Ast.True | Ast.False) as e -> e
      | Ast.Cmp (a, op, b) -> Ast.Cmp (subst_term a, op, subst_term b)
      | Ast.Not e -> Ast.Not (subst_expr e)
      | Ast.And (a, b) -> Ast.And (subst_expr a, subst_expr b)
      | Ast.Or (a, b) -> Ast.Or (subst_expr a, subst_expr b)
    in
    {
      assertion with
      Ast.authorizer = subst_name assertion.Ast.authorizer;
      licensees = subst_lic assertion.Ast.licensees;
      conditions =
        List.map
          (fun (cl : Ast.clause) -> { cl with Ast.guard = subst_expr cl.Ast.guard })
          assertion.Ast.conditions;
    }
  end

let assertion_of_fields fields =
  let authorizer = ref None in
  let licensees = ref Ast.L_empty in
  let conditions = ref [] in
  let comment = ref None in
  let signature = ref None in
  let constants = ref [] in
  List.iter
    (fun (line, name, value) ->
      match name with
      | "keynote-version" ->
          if String.trim value <> "2" then fail line "unsupported keynote-version %S" value
      | "authorizer" -> authorizer := Some (unquote ~line value)
      | "local-constants" -> constants := !constants @ parse_constants ~line value
      | "licensees" ->
          let c = cursor ~line (tokenize ~line value) in
          let l = parse_licensees c in
          expect c EOF;
          licensees := l
      | "conditions" ->
          let c = cursor ~line (tokenize ~line value) in
          conditions := parse_clauses c
      | "comment" -> comment := Some (String.trim value)
      | "signature" -> signature := Some (unquote ~line value)
      | other -> fail line "unknown field %S" other)
    fields;
  match !authorizer with
  | None -> fail 0 "assertion has no authorizer"
  | Some authorizer ->
      substitute_constants !constants
        {
          Ast.authorizer;
          licensees = !licensees;
          conditions = !conditions;
          comment = !comment;
          signature = !signature;
        }

let assertion_of_string text = assertion_of_fields (split_fields ~first_line:1 text)

let assertions_of_string text =
  (* Blank lines separate assertions. *)
  let lines = String.split_on_char '\n' text in
  let groups = ref [] in
  let cur = Buffer.create 128 in
  let cur_start = ref 1 in
  let cur_empty = ref true in
  List.iteri
    (fun i line ->
      if String.trim line = "" then begin
        if not !cur_empty then begin
          groups := (!cur_start, Buffer.contents cur) :: !groups;
          Buffer.clear cur;
          cur_empty := true
        end
      end
      else begin
        if !cur_empty then cur_start := i + 1;
        cur_empty := false;
        Buffer.add_string cur line;
        Buffer.add_char cur '\n'
      end)
    lines;
  if not !cur_empty then groups := (!cur_start, Buffer.contents cur) :: !groups;
  List.rev_map
    (fun (first_line, text) -> assertion_of_fields (split_fields ~first_line text))
    !groups

let expr_of_string s =
  let c = cursor ~line:1 (tokenize ~line:1 s) in
  let e = parse_expr c in
  expect c EOF;
  e

let licensees_of_string s =
  let c = cursor ~line:1 (tokenize ~line:1 s) in
  let l = parse_licensees c in
  expect c EOF;
  l

(* ------------------------------------------------------------------ *)
(* Total entry points                                                  *)
(* ------------------------------------------------------------------ *)

(* With the overflow and nesting guards above, [Parse_error] is the only
   exception the parsers can raise, so catching it makes these total. *)
let total f x =
  match f x with
  | v -> Ok v
  | exception Parse_error { line; message } -> Error { line; message }

let assertion_of_string_res = total assertion_of_string
let assertions_of_string_res = total assertions_of_string
let expr_of_string_res = total expr_of_string
let licensees_of_string_res = total licensees_of_string
