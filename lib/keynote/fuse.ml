(* Fused batch execution of compiled decision programs.

   [Compile.run] executes one full program per admission query.  Under a
   64-slot ring batch that is 64 complete interpreter passes even though
   every opcode that depends only on the credential chain, the module
   identity, and the call origin computes the same value in every slot.
   This module re-lowers a compiled program into *segments*, classifies
   each segment as batch-invariant or per-slot, runs the invariant part
   once per batch into a snapshot, and replays only the residue per slot.

   The re-lowering leans on a structural property of [Compile.compile]:
   because nested emissions (licensee principals, shared-principal merges)
   complete before the enclosing assertion emits its own opcodes, the flat
   program is a concatenation of contiguous, self-contained segments —
   assertion bodies ([Node_begin] … [Node_end]/[Node_end_const]),
   principal merges ([Push_level] … [Store_node]), and the final [Root] —
   whose jumps are segment-local and which communicate only through the
   value-node array.  [segment_bounds] checks that property instead of
   assuming it; a program that ever violates it degrades to one all-residue
   segment, which is just per-slot execution under another name. *)

type origin = { o_module : string; o_ring : int; o_transport : string }

let no_origin = { o_module = "user"; o_ring = 3; o_transport = "msgq" }

type ofield = OF_module | OF_ring | OF_transport

type fop =
  (* base opcodes, unchanged semantics (jumps segment-relative) *)
  | F_test of Compile.operand * Ast.cmp * Compile.operand
  | F_push_bool of bool
  | F_not
  | F_jfalse of int
  | F_jtrue of int
  | F_node_begin
  | F_clause of int
  | F_push_level of int
  | F_load_node of int
  | F_min2
  | F_max2
  | F_kof of int * int
  | F_node_end of int
  | F_node_end_const of int * int
  | F_store_node of int
  | F_root of int * int array
  (* superoperators: two base opcodes, one dispatch, one op charged *)
  | F_test_jf of Compile.operand * Ast.cmp * Compile.operand * int
  | F_test_jt of Compile.operand * Ast.cmp * Compile.operand * int
  | F_test_clause of Compile.operand * Ast.cmp * Compile.operand * int
  | F_load_max of int  (* top := max top nodes.(i) *)
  | F_const_max of int  (* top := max top c *)
  | F_const_min of int  (* top := min top c *)
  (* origin predicates: resolved from the kernel-held origin record, not
     from the (client-influencable in principle) attribute list *)
  | F_origin of ofield * Ast.cmp * Compile.operand
  | F_origin_jf of ofield * Ast.cmp * Compile.operand * int
  | F_origin_jt of ofield * Ast.cmp * Compile.operand * int
  | F_origin_clause of ofield * Ast.cmp * Compile.operand * int

let fop_mnemonic = function
  | F_test _ -> "test"
  | F_push_bool _ -> "push-bool"
  | F_not -> "not"
  | F_jfalse _ -> "jfalse"
  | F_jtrue _ -> "jtrue"
  | F_node_begin -> "node-begin"
  | F_clause _ -> "clause"
  | F_push_level _ -> "push-level"
  | F_load_node _ -> "load-node"
  | F_min2 -> "min"
  | F_max2 -> "max"
  | F_kof _ -> "k-of"
  | F_node_end _ -> "node-end"
  | F_node_end_const _ -> "node-end-const"
  | F_store_node _ -> "store-node"
  | F_root _ -> "root"
  | F_test_jf _ -> "test+jf"
  | F_test_jt _ -> "test+jt"
  | F_test_clause _ -> "test+clause"
  | F_load_max _ -> "load+max"
  | F_const_max _ -> "const+max"
  | F_const_min _ -> "const+min"
  | F_origin _ -> "origin"
  | F_origin_jf _ -> "origin+jf"
  | F_origin_jt _ -> "origin+jt"
  | F_origin_clause _ -> "origin+clause"

let is_superop = function
  | F_test_jf _ | F_test_jt _ | F_test_clause _ | F_load_max _ | F_const_max _
  | F_const_min _ | F_origin_jf _ | F_origin_jt _ | F_origin_clause _ ->
      true
  | _ -> false

let is_origin_op = function
  | F_origin _ | F_origin_jf _ | F_origin_jt _ | F_origin_clause _ -> true
  | _ -> false

type seg = { ops : fop array; invariant : bool }

type t = {
  f_segs : seg array;
  f_prefix : int array;  (* invariant segment indices, program order *)
  f_residue : int array;  (* per-slot segment indices + root, program order *)
  f_nnodes : int;
  f_levels : string array;
  f_max_seg : int;  (* longest segment, bounds the evaluation stack *)
}

(* ------------------------------------------------------------------ *)
(* Structural-sharing arena                                            *)
(* ------------------------------------------------------------------ *)

(* Registry-wide hash-consing of lowered segment arrays.  Two compiled
   programs that end in the same assertion suffix (the common case in a
   large registry grown from templates) lower to structurally equal
   segment arrays — same opcodes, same node indices, same local jump
   targets — so the arena stores one copy.  The arena is domain-local
   (bench workers plan concurrently; a shared table would need locking
   and would make per-task stats racy) and purely an interning cache:
   plans from different arenas are still semantically identical. *)

type arena = {
  tbl : (fop array, fop array) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable bytes_saved : int;
}

type arena_stats = {
  a_segments : int;  (* distinct segment arrays held *)
  a_hits : int;
  a_misses : int;
  a_bytes_saved : int;
}

let arena_key : arena Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { tbl = Hashtbl.create 256; hits = 0; misses = 0; bytes_saved = 0 })

(* Boxed-size estimate of one lowered opcode: constructor block + operand
   blocks, ~4 words.  Only used for the bytes-saved statistic. *)
let fop_bytes ops = 32 * Array.length ops

let intern ops =
  let a = Domain.DLS.get arena_key in
  match Hashtbl.find_opt a.tbl ops with
  | Some shared ->
      a.hits <- a.hits + 1;
      a.bytes_saved <- a.bytes_saved + fop_bytes ops;
      shared
  | None ->
      a.misses <- a.misses + 1;
      Hashtbl.replace a.tbl ops ops;
      ops

let arena_stats () =
  let a = Domain.DLS.get arena_key in
  {
    a_segments = Hashtbl.length a.tbl;
    a_hits = a.hits;
    a_misses = a.misses;
    a_bytes_saved = a.bytes_saved;
  }

let arena_reset () =
  let a = Domain.DLS.get arena_key in
  Hashtbl.reset a.tbl;
  a.hits <- 0;
  a.misses <- 0;
  a.bytes_saved <- 0

let arena_hit_rate_pct () =
  let a = Domain.DLS.get arena_key in
  let total = a.hits + a.misses in
  if total = 0 then None else Some (100.0 *. float_of_int a.hits /. float_of_int total)

(* ------------------------------------------------------------------ *)
(* Planning: segment, lower, fuse, classify                            *)
(* ------------------------------------------------------------------ *)

(* [Some bounds] iff the program splits into contiguous runs each closed
   by a node-writing terminator (or [Root]) with all jumps local. *)
let segment_bounds instrs =
  let n = Array.length instrs in
  let bounds = ref [] in
  let jumps = ref [] in
  let start = ref 0 in
  for i = 0 to n - 1 do
    match instrs.(i) with
    | Compile.Jfalse t | Compile.Jtrue t -> jumps := (i, t) :: !jumps
    | Compile.Node_end _ | Compile.Node_end_const _ | Compile.Store_node _
    | Compile.Root _ ->
        bounds := (!start, i) :: !bounds;
        start := i + 1
    | _ -> ()
  done;
  if !start <> n || !bounds = [] then None
  else begin
    let bounds = Array.of_list (List.rev !bounds) in
    (* Every jump must stay inside its own segment (strictly before the
       terminator) — that is what makes segments independently runnable. *)
    let local (pos, target) =
      Array.exists (fun (s, e) -> s <= pos && pos <= e && s <= target && target < e) bounds
    in
    if List.for_all local !jumps then Some bounds else None
  end

let origin_field_of_attr = function
  | "origin_module" -> Some OF_module
  | "origin_ring" -> Some OF_ring
  | "origin_transport" -> Some OF_transport
  | _ -> None

(* Mirror a comparison so the origin value can sit on the left. *)
let flip_cmp = function
  | Ast.Eq -> Ast.Eq
  | Ast.Ne -> Ast.Ne
  | Ast.Lt -> Ast.Gt
  | Ast.Le -> Ast.Ge
  | Ast.Gt -> Ast.Lt
  | Ast.Ge -> Ast.Le

(* Base lowering: one fop per instr, jumps rebased to the segment, origin
   tests against literals turned into origin opcodes.  Origin-vs-attribute
   comparisons stay [F_test] — the dispatcher appends the origin pairs to
   the attribute list, so they still resolve (to the same values). *)
let lower_instr ~start = function
  | Compile.Test (a, op, b) -> (
      let lower_one side op other =
        match side with
        | Compile.O_attr name -> (
            match origin_field_of_attr name with
            | Some f -> (
                match other with
                | Compile.O_str _ -> Some (F_origin (f, op, other))
                | Compile.O_attr o when origin_field_of_attr o = None ->
                    Some (F_origin (f, op, other))
                | Compile.O_attr _ -> None (* origin vs origin: keep F_test *))
            | None -> None)
        | Compile.O_str _ -> None
      in
      match lower_one a op b with
      | Some f -> f
      | None -> (
          match lower_one b (flip_cmp op) a with
          | Some f -> f
          | None -> F_test (a, op, b)))
  | Compile.Push_bool b -> F_push_bool b
  | Compile.Not_top -> F_not
  | Compile.Jfalse t -> F_jfalse (t - start)
  | Compile.Jtrue t -> F_jtrue (t - start)
  | Compile.Node_begin -> F_node_begin
  | Compile.Clause l -> F_clause l
  | Compile.Push_level v -> F_push_level v
  | Compile.Load_node i -> F_load_node i
  | Compile.Min2 -> F_min2
  | Compile.Max2 -> F_max2
  | Compile.Kof (k, n) -> F_kof (k, n)
  | Compile.Node_end i -> F_node_end i
  | Compile.Node_end_const (i, c) -> F_node_end_const (i, c)
  | Compile.Store_node i -> F_store_node i
  | Compile.Root (base, nodes) -> F_root (base, nodes)

let jump_target = function
  | F_jfalse t | F_jtrue t
  | F_test_jf (_, _, _, t)
  | F_test_jt (_, _, _, t)
  | F_origin_jf (_, _, _, t)
  | F_origin_jt (_, _, _, t) ->
      Some t
  | _ -> None

let remap_jump newpos = function
  | F_jfalse t -> F_jfalse newpos.(t)
  | F_jtrue t -> F_jtrue newpos.(t)
  | F_test_jf (a, c, b, t) -> F_test_jf (a, c, b, newpos.(t))
  | F_test_jt (a, c, b, t) -> F_test_jt (a, c, b, newpos.(t))
  | F_origin_jf (f, c, b, t) -> F_origin_jf (f, c, b, newpos.(t))
  | F_origin_jt (f, c, b, t) -> F_origin_jt (f, c, b, newpos.(t))
  | op -> op

(* Peephole superoperator fusion over one segment.  A pair [(i, i+1)] may
   fuse only when [i + 1] is not a jump target — otherwise the jump would
   land in the middle of the superoperator.  Jump targets survive fusion
   through an old-position -> new-position map (a target is never the
   second element of a fused pair, so its mapping is always exact). *)
let fuse_segment ops =
  let n = Array.length ops in
  let is_target = Array.make (n + 1) false in
  Array.iter
    (fun op -> match jump_target op with Some t -> is_target.(t) <- true | None -> ())
    ops;
  let out = ref [] in
  let newpos = Array.make (n + 1) 0 in
  let i = ref 0 in
  let m = ref 0 in
  while !i < n do
    newpos.(!i) <- !m;
    let next = if !i + 1 < n && not is_target.(!i + 1) then Some ops.(!i + 1) else None in
    let fused =
      match (ops.(!i), next) with
      | F_test (a, c, b), Some (F_jfalse t) -> Some (F_test_jf (a, c, b, t))
      | F_test (a, c, b), Some (F_jtrue t) -> Some (F_test_jt (a, c, b, t))
      | F_test (a, c, b), Some (F_clause l) -> Some (F_test_clause (a, c, b, l))
      | F_origin (f, c, b), Some (F_jfalse t) -> Some (F_origin_jf (f, c, b, t))
      | F_origin (f, c, b), Some (F_jtrue t) -> Some (F_origin_jt (f, c, b, t))
      | F_origin (f, c, b), Some (F_clause l) -> Some (F_origin_clause (f, c, b, l))
      | F_load_node k, Some F_max2 -> Some (F_load_max k)
      | F_push_level v, Some F_max2 -> Some (F_const_max v)
      | F_push_level v, Some F_min2 -> Some (F_const_min v)
      | _ -> None
    in
    (match fused with
    | Some f ->
        out := f :: !out;
        newpos.(!i + 1) <- !m;
        i := !i + 2
    | None ->
        out := ops.(!i) :: !out;
        incr i);
    incr m
  done;
  newpos.(n) <- !m;
  Array.map (remap_jump newpos) (Array.of_list (List.rev !out))

let reads_varying ~varying op =
  let attr_varying = function
    | Compile.O_attr a -> List.mem a varying
    | Compile.O_str _ -> false
  in
  match op with
  | F_test (a, _, b) | F_test_jf (a, _, b, _) | F_test_jt (a, _, b, _)
  | F_test_clause (a, _, b, _) ->
      attr_varying a || attr_varying b
  | F_origin (_, _, b) | F_origin_jf (_, _, b, _) | F_origin_jt (_, _, b, _)
  | F_origin_clause (_, _, b, _) ->
      attr_varying b
  | _ -> false

let node_loads op =
  match op with F_load_node k | F_load_max k -> Some k | _ -> None

let node_writes op =
  match op with
  | F_node_end i | F_node_end_const (i, _) | F_store_node i -> Some i
  | _ -> None

let plan program ~varying =
  let instrs = Compile.instrs program in
  let nnodes = Compile.node_count program in
  let levels = Compile.levels program in
  let lowered_of start stop =
    intern (fuse_segment (Array.init (stop - start + 1) (fun k -> lower_instr ~start instrs.(start + k))))
  in
  let segs, prefix, residue =
    match segment_bounds instrs with
    | None ->
        (* Shape violation (cannot happen for programs [Compile.compile]
           emits, but stay total): everything is residue — plain per-slot
           execution, still fused within the single segment. *)
        let all = lowered_of 0 (Array.length instrs - 1) in
        ([| { ops = all; invariant = false } |], [||], [| 0 |])
    | Some bounds ->
        let node_inv = Array.make (max nnodes 1) false in
        let segs =
          Array.map
            (fun (start, stop) ->
              let ops = lowered_of start stop in
              let is_root = match instrs.(stop) with Compile.Root _ -> true | _ -> false in
              let invariant =
                (not is_root)
                && Array.for_all
                     (fun op ->
                       (not (reads_varying ~varying op))
                       &&
                       match node_loads op with
                       | Some k -> node_inv.(k)
                       | None -> true)
                     ops
              in
              Array.iter
                (fun op ->
                  match node_writes op with
                  | Some i -> node_inv.(i) <- invariant
                  | None -> ())
                ops;
              { ops; invariant })
            bounds
        in
        let idx p = Array.to_list segs |> List.mapi (fun i s -> (i, s))
                    |> List.filter_map (fun (i, s) -> if p s then Some i else None)
                    |> Array.of_list in
        (segs, idx (fun s -> s.invariant), idx (fun s -> not s.invariant))
  in
  let max_seg = Array.fold_left (fun m s -> max m (Array.length s.ops)) 1 segs in
  { f_segs = segs; f_prefix = prefix; f_residue = residue; f_nnodes = nnodes;
    f_levels = levels; f_max_seg = max_seg }

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type snapshot = { s_nodes : int array; s_setup_ops : int }

let m_scope = Smod_metrics.scope "keynote"
let m_fused_batches = Smod_metrics.Scope.counter m_scope "fused_batches"
let m_fused_slots = Smod_metrics.Scope.counter m_scope "fused_slots"
let m_fused_ops = Smod_metrics.Scope.counter m_scope "fused_ops"

let origin_value origin = function
  | OF_module -> origin.o_module
  | OF_ring -> string_of_int origin.o_ring
  | OF_transport -> origin.o_transport

let holds op c = match op with
  | Ast.Eq -> c = 0
  | Ast.Ne -> c <> 0
  | Ast.Lt -> c < 0
  | Ast.Le -> c <= 0
  | Ast.Gt -> c > 0
  | Ast.Ge -> c >= 0

(* One segment, local program counter and stack.  Returns the value left
   on the stack (only the [Root] segment leaves one). *)
let exec_seg ops ~nodes ~origin ~attrs ~stack ~ops_count =
  let n = Array.length ops in
  let sp = ref 0 in
  let push v =
    stack.(!sp) <- v;
    incr sp
  in
  let pop () =
    decr sp;
    stack.(!sp)
  in
  let operand_value = function
    | Compile.O_str s -> s
    | Compile.O_attr a -> (
        match List.assoc_opt a attrs with Some v -> v | None -> "")
  in
  let test a op b = holds op (Compile.compare_values (operand_value a) (operand_value b)) in
  let otest f op b =
    holds op (Compile.compare_values (origin_value origin f) (operand_value b))
  in
  let acc = ref 0 in
  let pc = ref 0 in
  while !pc < n do
    incr ops_count;
    match ops.(!pc) with
    | F_test (a, op, b) ->
        push (if test a op b then 1 else 0);
        incr pc
    | F_push_bool b ->
        push (if b then 1 else 0);
        incr pc
    | F_not ->
        stack.(!sp - 1) <- (if stack.(!sp - 1) = 0 then 1 else 0);
        incr pc
    | F_jfalse target ->
        if stack.(!sp - 1) = 0 then pc := target
        else begin
          ignore (pop ());
          incr pc
        end
    | F_jtrue target ->
        if stack.(!sp - 1) <> 0 then pc := target
        else begin
          ignore (pop ());
          incr pc
        end
    | F_node_begin ->
        acc := 0;
        incr pc
    | F_clause level ->
        if pop () <> 0 then acc := max !acc level;
        incr pc
    | F_push_level v ->
        push v;
        incr pc
    | F_load_node i ->
        push nodes.(i);
        incr pc
    | F_min2 ->
        let b = pop () in
        let a = pop () in
        push (min a b);
        incr pc
    | F_max2 ->
        let b = pop () in
        let a = pop () in
        push (max a b);
        incr pc
    | F_kof (k, count) ->
        let members = ref [] in
        for _ = 1 to count do
          members := pop () :: !members
        done;
        push (Compile.kth_largest k !members);
        incr pc
    | F_node_end i ->
        let lic = pop () in
        nodes.(i) <- min !acc lic;
        incr pc
    | F_node_end_const (i, lic) ->
        nodes.(i) <- min !acc lic;
        incr pc
    | F_store_node i ->
        nodes.(i) <- pop ();
        incr pc
    | F_root (base, roots) ->
        push (Array.fold_left (fun m i -> max m nodes.(i)) base roots);
        incr pc
    (* superoperators: exact composition of the two base opcodes *)
    | F_test_jf (a, op, b, target) ->
        if test a op b then incr pc
        else begin
          push 0;
          pc := target
        end
    | F_test_jt (a, op, b, target) ->
        if test a op b then begin
          push 1;
          pc := target
        end
        else incr pc
    | F_test_clause (a, op, b, level) ->
        if test a op b then acc := max !acc level;
        incr pc
    | F_load_max i ->
        stack.(!sp - 1) <- max stack.(!sp - 1) nodes.(i);
        incr pc
    | F_const_max c ->
        stack.(!sp - 1) <- max stack.(!sp - 1) c;
        incr pc
    | F_const_min c ->
        stack.(!sp - 1) <- min stack.(!sp - 1) c;
        incr pc
    | F_origin (f, op, b) ->
        push (if otest f op b then 1 else 0);
        incr pc
    | F_origin_jf (f, op, b, target) ->
        if otest f op b then incr pc
        else begin
          push 0;
          pc := target
        end
    | F_origin_jt (f, op, b, target) ->
        if otest f op b then begin
          push 1;
          pc := target
        end
        else incr pc
    | F_origin_clause (f, op, b, level) ->
        if otest f op b then acc := max !acc level;
        incr pc
  done;
  if !sp > 0 then Some stack.(!sp - 1) else None

let begin_batch t ~origin ~attrs =
  let nodes = Array.make (max t.f_nnodes 1) 0 in
  let stack = Array.make (t.f_max_seg + 1) 0 in
  let ops_count = ref 0 in
  Array.iter
    (fun si -> ignore (exec_seg t.f_segs.(si).ops ~nodes ~origin ~attrs ~stack ~ops_count))
    t.f_prefix;
  Smod_metrics.Counter.incr m_fused_batches;
  Smod_metrics.Counter.add m_fused_ops !ops_count;
  { s_nodes = nodes; s_setup_ops = !ops_count }

(* Per-slot residue replay.  Residue segments only ever write nodes that
   residue segments themselves define (a reader of a variant node is
   itself variant by construction), and each is rewritten before it is
   read within a slot — so the snapshot's node array is safely reused in
   place across slots, with the invariant entries never touched. *)
let run_slot t snapshot ~origin ~attrs =
  let nodes = snapshot.s_nodes in
  let stack = Array.make (t.f_max_seg + 1) 0 in
  let ops_count = ref 0 in
  let result = ref 0 in
  Array.iter
    (fun si ->
      match exec_seg t.f_segs.(si).ops ~nodes ~origin ~attrs ~stack ~ops_count with
      | Some v -> result := v
      | None -> ())
    t.f_residue;
  let index = max 0 (min (Array.length t.f_levels - 1) !result) in
  Smod_metrics.Counter.incr m_fused_slots;
  Smod_metrics.Counter.add m_fused_ops !ops_count;
  Compile.{ level = t.f_levels.(index); index; ops = !ops_count }

let run t ~origin ~attrs =
  let snapshot = begin_batch t ~origin ~attrs in
  let outcome = run_slot t snapshot ~origin ~attrs in
  (snapshot, outcome)

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

type stats = {
  segments : int;
  invariant_segments : int;
  total_fops : int;
  invariant_fops : int;
  superops : (string * int) list;
  origin_fops : int;
}

let stats t =
  let total = ref 0 and inv = ref 0 and orig = ref 0 in
  let inv_segs = ref 0 in
  let supers = Hashtbl.create 8 in
  Array.iter
    (fun s ->
      if s.invariant then incr inv_segs;
      Array.iter
        (fun op ->
          incr total;
          if s.invariant then incr inv;
          if is_origin_op op then incr orig;
          if is_superop op then begin
            let m = fop_mnemonic op in
            Hashtbl.replace supers m (1 + Option.value ~default:0 (Hashtbl.find_opt supers m))
          end)
        s.ops)
    t.f_segs;
  let superops =
    Hashtbl.fold (fun m n acc -> (m, n) :: acc) supers []
    |> List.sort (fun (ma, na) (mb, nb) ->
           if na <> nb then compare nb na else compare ma mb)
  in
  {
    segments = Array.length t.f_segs;
    invariant_segments = !inv_segs;
    total_fops = !total;
    invariant_fops = !inv;
    superops;
    origin_fops = !orig;
  }

let prefix_fraction t =
  let s = stats t in
  if s.total_fops = 0 then 0.0
  else float_of_int s.invariant_fops /. float_of_int s.total_fops

(* Plan internals for the batch-major executor (Vexec): the vectorized
   walk re-interprets residue segments lane-major, so it needs the raw
   lowered form, not just [run_slot]. *)
let segments t = t.f_segs
let residue_segments t = t.f_residue
let levels t = t.f_levels
let node_count t = t.f_nnodes
let max_seg t = t.f_max_seg

let residue_reads t attrs =
  Array.exists
    (fun si -> Array.exists (reads_varying ~varying:attrs) t.f_segs.(si).ops)
    t.f_residue
